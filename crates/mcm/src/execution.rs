//! Candidate executions: events plus program order and conflict orders.
//!
//! A *candidate execution* (paper §2.1) is the object the checker decides
//! about: the set of events executed by a test, their per-thread program order
//! (`po`), and the dynamically observed conflict orders — reads-from (`rf`,
//! relating each write to the reads it supplies) and coherence order (`co`,
//! serialising writes to the same address).  In simulation both conflict
//! orders are fully visible, so the execution object is complete and the
//! from-reads relation (`fr`) can be derived exactly.

use crate::event::{
    Address, DepKind, Event, EventId, EventKind, FenceKind, Iiid, ProcessorId, Value,
};
use crate::program;
use crate::relation::Relation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The syntactic dependencies of an execution, one relation per [`DepKind`].
///
/// Every edge goes from a read event to a program-order-later event of the
/// same thread (the builder's [`dependency`](ExecutionBuilder::dependency)
/// documents this contract).  Relaxed models fold these into their preserved
/// program order; SC and TSO already order every dependency pair through plain
/// program order, so they ignore this structure.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencySet {
    /// Address dependencies (read value feeds a later access's address).
    pub addr: Relation,
    /// Data dependencies (read value feeds a later write's data).
    pub data: Relation,
    /// Control dependencies (a branch on the read value precedes the target).
    pub ctrl: Relation,
}

impl DependencySet {
    /// Creates an empty dependency set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relation for one dependency kind.
    pub fn of(&self, kind: DepKind) -> &Relation {
        match kind {
            DepKind::Addr => &self.addr,
            DepKind::Data => &self.data,
            DepKind::Ctrl => &self.ctrl,
        }
    }

    /// Mutable access to the relation for one dependency kind.
    pub fn of_mut(&mut self, kind: DepKind) -> &mut Relation {
        match kind {
            DepKind::Addr => &mut self.addr,
            DepKind::Data => &mut self.data,
            DepKind::Ctrl => &mut self.ctrl,
        }
    }

    /// The union of all three dependency relations.
    pub fn union_all(&self) -> Relation {
        let mut out = self.addr.clone();
        out.union_with(&self.data);
        out.union_with(&self.ctrl);
        out
    }

    /// Total number of dependency edges.
    pub fn len(&self) -> usize {
        self.addr.len() + self.data.len() + self.ctrl.len()
    }

    /// Returns `true` if no dependencies are recorded.
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty() && self.data.is_empty() && self.ctrl.is_empty()
    }
}

/// Errors produced when an execution object is not well formed.
///
/// A malformed execution indicates a bug in whatever recorded it (the
/// simulator's observer), not a consistency violation, so these are reported
/// separately from checker verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormednessError {
    /// A read has no reads-from source.
    ReadWithoutSource(EventId),
    /// A read has more than one reads-from source.
    MultipleSources(EventId),
    /// An `rf` pair whose source is not a write or whose target is not a read.
    MalformedRf(EventId, EventId),
    /// An `rf` pair relating events with different addresses.
    RfAddressMismatch(EventId, EventId),
    /// An `rf` pair where the value read differs from the value written.
    RfValueMismatch(EventId, EventId),
    /// A `co` pair relating non-writes or writes to different addresses.
    MalformedCo(EventId, EventId),
    /// The coherence order for one address contains a cycle.
    CyclicCoherence(Address),
    /// A dependency pair whose source is not a read, or that is not ordered by
    /// program order (dependencies are intra-thread, read → later access).
    MalformedDependency(EventId, EventId),
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::ReadWithoutSource(e) => {
                write!(f, "read {e} has no reads-from source")
            }
            WellFormednessError::MultipleSources(e) => {
                write!(f, "read {e} has multiple reads-from sources")
            }
            WellFormednessError::MalformedRf(a, b) => {
                write!(f, "rf pair ({a},{b}) does not relate a write to a read")
            }
            WellFormednessError::RfAddressMismatch(a, b) => {
                write!(f, "rf pair ({a},{b}) relates different addresses")
            }
            WellFormednessError::RfValueMismatch(a, b) => {
                write!(f, "rf pair ({a},{b}) value mismatch")
            }
            WellFormednessError::MalformedCo(a, b) => {
                write!(f, "co pair ({a},{b}) does not relate same-address writes")
            }
            WellFormednessError::CyclicCoherence(a) => {
                write!(f, "coherence order for {a} is cyclic")
            }
            WellFormednessError::MalformedDependency(a, b) => {
                write!(
                    f,
                    "dependency pair ({a},{b}) is not read -> po-later access"
                )
            }
        }
    }
}

impl std::error::Error for WellFormednessError {}

/// A complete candidate execution ready to be checked against a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateExecution {
    events: Vec<Event>,
    po: Relation,
    rf: Relation,
    co: Relation,
    co_observed: Relation,
    deps: DependencySet,
}

impl CandidateExecution {
    /// Constructs an execution from raw parts (no dependencies).
    ///
    /// Prefer [`ExecutionBuilder`] which also derives `po` and keeps event ids
    /// dense; this constructor exists for deserialisation and tests.
    pub fn from_parts(events: Vec<Event>, po: Relation, rf: Relation, co: Relation) -> Self {
        Self::from_parts_with_deps(events, po, rf, co, DependencySet::default())
    }

    /// Constructs an execution from raw parts including its dependency set.
    pub fn from_parts_with_deps(
        events: Vec<Event>,
        po: Relation,
        rf: Relation,
        co: Relation,
        deps: DependencySet,
    ) -> Self {
        let co_observed = co.clone();
        let co = co.transitive_closure();
        CandidateExecution {
            events,
            po,
            rf,
            co,
            co_observed,
            deps,
        }
    }

    /// All events of the execution, ordered by event id.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Looks up an event by id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of events, including synthetic initial writes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The (transitive) program order.
    pub fn po(&self) -> &Relation {
        &self.po
    }

    /// Program order restricted to same-address pairs (`po-loc`).
    pub fn po_loc(&self) -> Relation {
        program::same_address(&self.po, &self.events)
    }

    /// The reads-from relation (write → read).
    pub fn rf(&self) -> &Relation {
        &self.rf
    }

    /// The syntactic dependencies recorded for this execution.
    pub fn deps(&self) -> &DependencySet {
        &self.deps
    }

    /// The coherence order (write → write, same address), transitively closed.
    pub fn co(&self) -> &Relation {
        &self.co
    }

    /// The coherence order as observed (immediate edges only: each write
    /// related to the write it directly overwrote).  This is the relation the
    /// NDT/NDe non-determinism metrics are computed over, so that a fully
    /// deterministic test-run has exactly one conflict predecessor per event.
    pub fn co_observed(&self) -> &Relation {
        &self.co_observed
    }

    /// External reads-from: pairs whose write and read are on different
    /// processors (or whose write is an initial write).
    pub fn rf_external(&self) -> Relation {
        self.rf.filter(|w, r| {
            let we = self.event(w);
            let re = self.event(r);
            we.pid() != re.pid() || we.pid().is_none()
        })
    }

    /// Internal reads-from: same-processor pairs.
    pub fn rf_internal(&self) -> Relation {
        self.rf.filter(|w, r| {
            let we = self.event(w);
            let re = self.event(r);
            we.pid().is_some() && we.pid() == re.pid()
        })
    }

    /// Derives the from-reads relation `fr = rf⁻¹ ; co`.
    ///
    /// A read `r` is from-read before a write `w'` when `r` reads from a write
    /// that is coherence-ordered before `w'`: the read observed a value that
    /// `w'` later (in coherence order) overwrote.
    pub fn fr(&self) -> Relation {
        self.rf.inverse().compose(&self.co)
    }

    /// The communication relation `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Relation {
        let mut com = self.rf.union(&self.co);
        com.union_with(&self.fr());
        com
    }

    /// All read events (including RMW read halves).
    pub fn reads(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.is_read())
    }

    /// All write events (including RMW write halves and initial writes).
    pub fn writes(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.is_write())
    }

    /// All fence events.
    pub fn fences(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.is_fence())
    }

    /// Writes to a particular address.
    pub fn writes_to(&self, addr: Address) -> impl Iterator<Item = &Event> {
        self.writes_iter_to(addr)
    }

    fn writes_iter_to(&self, addr: Address) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(move |e| e.is_write() && e.addr == Some(addr))
    }

    /// The set of distinct addresses accessed by memory events.
    pub fn addresses(&self) -> Vec<Address> {
        let mut addrs: Vec<Address> = self.events.iter().filter_map(|e| e.addr).collect();
        addrs.sort();
        addrs.dedup();
        addrs
    }

    /// The set of processors with at least one event.
    pub fn processors(&self) -> Vec<ProcessorId> {
        let mut pids: Vec<ProcessorId> = self.events.iter().filter_map(|e| e.pid()).collect();
        pids.sort();
        pids.dedup();
        pids
    }

    /// Checks structural well-formedness of the execution object.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellFormednessError`] found: reads without (or with
    /// multiple) sources, `rf`/`co` pairs with mismatched kinds, addresses or
    /// values, or a cyclic per-address coherence order.
    pub fn validate(&self) -> Result<(), WellFormednessError> {
        // rf shape checks.
        for (w, r) in self.rf.iter() {
            let we = self.event(w);
            let re = self.event(r);
            if !we.is_write() || !re.is_read() {
                return Err(WellFormednessError::MalformedRf(w, r));
            }
            if we.addr != re.addr {
                return Err(WellFormednessError::RfAddressMismatch(w, r));
            }
            if we.value != re.value {
                return Err(WellFormednessError::RfValueMismatch(w, r));
            }
        }
        // Every read has exactly one source.
        let rf_inv = self.rf.inverse();
        for read in self.reads() {
            let sources: Vec<EventId> = rf_inv.successors(read.id).collect();
            match sources.len() {
                0 => return Err(WellFormednessError::ReadWithoutSource(read.id)),
                1 => {}
                _ => return Err(WellFormednessError::MultipleSources(read.id)),
            }
        }
        // co shape checks.
        for (a, b) in self.co.iter() {
            let ae = self.event(a);
            let be = self.event(b);
            if !ae.is_write() || !be.is_write() || ae.addr != be.addr || ae.addr.is_none() {
                return Err(WellFormednessError::MalformedCo(a, b));
            }
        }
        // Per-address acyclicity of co.
        for addr in self.addresses() {
            let per_addr = self.co.filter(|a, b| {
                self.event(a).addr == Some(addr) && self.event(b).addr == Some(addr)
            });
            if !per_addr.is_acyclic() {
                return Err(WellFormednessError::CyclicCoherence(addr));
            }
        }
        // Dependency shape checks: read source, program-order before target.
        for (a, b) in self.deps.union_all().iter() {
            if !self.event(a).is_read() || !self.po.contains(a, b) {
                return Err(WellFormednessError::MalformedDependency(a, b));
            }
        }
        Ok(())
    }
}

/// Incrementally constructs a [`CandidateExecution`].
///
/// The builder allocates dense event ids, tracks per-processor program-order
/// indices, creates initial-value writes on demand, and derives the transitive
/// program order at [`build`](ExecutionBuilder::build) time.
#[derive(Debug, Clone, Default)]
pub struct ExecutionBuilder {
    events: Vec<Event>,
    rf: Relation,
    co: Relation,
    deps: DependencySet,
    next_poi: BTreeMap<ProcessorId, u32>,
    init_writes: BTreeMap<Address, EventId>,
}

impl ExecutionBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(
        &mut self,
        iiid: Option<Iiid>,
        kind: EventKind,
        addr: Option<Address>,
        value: Value,
    ) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(Event {
            id,
            iiid,
            kind,
            addr,
            value,
        });
        id
    }

    fn next_iiid(&mut self, pid: ProcessorId) -> Iiid {
        let poi = self.next_poi.entry(pid).or_insert(0);
        let iiid = Iiid { pid, poi: *poi };
        *poi += 1;
        iiid
    }

    /// Appends a read event to processor `pid`'s program.
    pub fn read(&mut self, pid: ProcessorId, addr: Address, value: Value) -> EventId {
        let iiid = self.next_iiid(pid);
        self.alloc(Some(iiid), EventKind::Read, Some(addr), value)
    }

    /// Appends a write event to processor `pid`'s program.
    pub fn write(&mut self, pid: ProcessorId, addr: Address, value: Value) -> EventId {
        let iiid = self.next_iiid(pid);
        self.alloc(Some(iiid), EventKind::Write, Some(addr), value)
    }

    /// Appends a fence event to processor `pid`'s program.
    pub fn fence(&mut self, pid: ProcessorId, kind: FenceKind) -> EventId {
        let iiid = self.next_iiid(pid);
        self.alloc(Some(iiid), EventKind::Fence(kind), None, Value::INITIAL)
    }

    /// Appends an atomic read-modify-write: returns `(read_event, write_event)`
    /// sharing one instruction id.
    pub fn rmw(
        &mut self,
        pid: ProcessorId,
        addr: Address,
        read_value: Value,
        write_value: Value,
    ) -> (EventId, EventId) {
        let iiid = self.next_iiid(pid);
        let r = self.alloc(Some(iiid), EventKind::RmwRead, Some(addr), read_value);
        let w = self.alloc(Some(iiid), EventKind::RmwWrite, Some(addr), write_value);
        (r, w)
    }

    /// Appends a read event with an explicit program-order index.
    ///
    /// Useful when the caller (e.g. the simulator's observer) already knows
    /// each instruction's position in its thread.
    pub fn read_at(&mut self, iiid: Iiid, addr: Address, value: Value) -> EventId {
        self.bump_poi(iiid);
        self.alloc(Some(iiid), EventKind::Read, Some(addr), value)
    }

    /// Appends a write event with an explicit program-order index.
    pub fn write_at(&mut self, iiid: Iiid, addr: Address, value: Value) -> EventId {
        self.bump_poi(iiid);
        self.alloc(Some(iiid), EventKind::Write, Some(addr), value)
    }

    /// Appends a fence event with an explicit program-order index.
    pub fn fence_at(&mut self, iiid: Iiid, kind: FenceKind) -> EventId {
        self.bump_poi(iiid);
        self.alloc(Some(iiid), EventKind::Fence(kind), None, Value::INITIAL)
    }

    /// Appends an RMW with an explicit program-order index.
    pub fn rmw_at(
        &mut self,
        iiid: Iiid,
        addr: Address,
        read_value: Value,
        write_value: Value,
    ) -> (EventId, EventId) {
        self.bump_poi(iiid);
        let r = self.alloc(Some(iiid), EventKind::RmwRead, Some(addr), read_value);
        let w = self.alloc(Some(iiid), EventKind::RmwWrite, Some(addr), write_value);
        (r, w)
    }

    fn bump_poi(&mut self, iiid: Iiid) {
        let next = self.next_poi.entry(iiid.pid).or_insert(0);
        if iiid.poi >= *next {
            *next = iiid.poi + 1;
        }
    }

    /// Overrides the value of an already-added event.
    ///
    /// Observers that create read events before execution (when the value is
    /// not yet known) use this to patch in the observed value afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an event added to this builder.
    pub fn set_event_value(&mut self, id: EventId, value: Value) {
        self.events[id.index()].value = value;
    }

    /// Returns (creating if necessary) the initial-value write event for `addr`.
    ///
    /// Initial writes carry [`Value::INITIAL`] and are coherence-ordered before
    /// every other write to the same address once [`build`](Self::build) runs.
    pub fn initial_write(&mut self, addr: Address) -> EventId {
        if let Some(&id) = self.init_writes.get(&addr) {
            return id;
        }
        let id = self.alloc(None, EventKind::Write, Some(addr), Value::INITIAL);
        self.init_writes.insert(addr, id);
        id
    }

    /// Records that `read` observes the value written by `write`.
    pub fn reads_from(&mut self, write: EventId, read: EventId) {
        self.rf.insert(write, read);
    }

    /// Records that `read` observes the initial (zero) value of its address.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a read event with an address.
    pub fn reads_from_initial(&mut self, read: EventId) {
        let addr = self.events[read.index()]
            .addr
            .expect("read event must have an address");
        assert!(
            self.events[read.index()].is_read(),
            "reads_from_initial target must be a read"
        );
        let init = self.initial_write(addr);
        self.rf.insert(init, read);
    }

    /// Records that `before` is coherence-ordered before `after`.
    pub fn coherence(&mut self, before: EventId, after: EventId) {
        self.co.insert(before, after);
    }

    /// Records a syntactic dependency from read `source` to the program-order
    /// later event `target` of the same thread.
    ///
    /// The caller must uphold the dependency contract (`source` is a read and
    /// precedes `target` in its thread's program order);
    /// [`CandidateExecution::validate`] rejects executions that break it.
    pub fn dependency(&mut self, kind: DepKind, source: EventId, target: EventId) {
        self.deps.of_mut(kind).insert(source, target);
    }

    /// Records that the initial write of `write`'s address is coherence-ordered
    /// before `write`.
    ///
    /// # Panics
    ///
    /// Panics if `write` is not a write event with an address.
    pub fn coherence_after_initial(&mut self, write: EventId) {
        let addr = self.events[write.index()]
            .addr
            .expect("write event must have an address");
        assert!(
            self.events[write.index()].is_write(),
            "coherence_after_initial target must be a write"
        );
        let init = self.initial_write(addr);
        self.co.insert(init, write);
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Access to the events added so far (primarily for observers that need to
    /// inspect what they have recorded).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Derives the program order of the events added so far (the same
    /// relation [`build`](Self::build) would derive).
    ///
    /// Program order depends only on the static event set, so callers that
    /// rebuild executions from the same events repeatedly (the simulator's
    /// per-iteration observer) can compute it once and finalise with
    /// [`build_with_po`](Self::build_with_po) instead of paying the
    /// quadratic derivation every time.
    pub fn program_order(&self) -> Relation {
        program::program_order(&self.events)
    }

    /// Finalises the execution: derives program order, closes the coherence
    /// order transitively, and orders every initial write before all other
    /// writes to its address.
    pub fn build(self) -> CandidateExecution {
        let po = self.program_order();
        self.build_with_po(po)
    }

    /// Finalises the execution with a precomputed program order (see
    /// [`program_order`](Self::program_order)); `po` must be the program
    /// order of this builder's event set.
    pub fn build_with_po(mut self, po: Relation) -> CandidateExecution {
        debug_assert_eq!(po, program::program_order(&self.events));
        // Initial writes are co-before every other write to the same address.
        let writes: Vec<(EventId, Address)> = self
            .events
            .iter()
            .filter(|e| e.is_write() && !e.is_initial())
            .filter_map(|e| e.addr.map(|a| (e.id, a)))
            .collect();
        let init_writes = self.init_writes.clone();
        for (w, addr) in writes {
            if let Some(&init) = init_writes.get(&addr) {
                self.co.insert(init, w);
            }
        }
        let co_observed = self.co.clone();
        let co = self.co.transitive_closure();
        CandidateExecution {
            events: self.events,
            po,
            rf: self.rf,
            co,
            co_observed,
            deps: self.deps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> ProcessorId {
        ProcessorId(n)
    }

    #[test]
    fn builder_allocates_dense_ids_and_pois() {
        let mut b = ExecutionBuilder::new();
        let a = b.write(p(0), Address(0x10), Value(1));
        let c = b.read(p(0), Address(0x10), Value(1));
        let d = b.read(p(1), Address(0x10), Value(1));
        assert_eq!(a, EventId(0));
        assert_eq!(c, EventId(1));
        assert_eq!(d, EventId(2));
        b.reads_from(a, c);
        b.reads_from(a, d);
        b.coherence_after_initial(a);
        let exec = b.build();
        assert_eq!(exec.event(a).iiid.unwrap().poi, 0);
        assert_eq!(exec.event(c).iiid.unwrap().poi, 1);
        assert_eq!(exec.event(d).iiid.unwrap().poi, 0);
        assert!(exec.validate().is_ok());
    }

    #[test]
    fn initial_write_created_once() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.read(p(0), Address(0x10), Value(0));
        let r2 = b.read(p(1), Address(0x10), Value(0));
        b.reads_from_initial(r1);
        b.reads_from_initial(r2);
        let exec = b.build();
        let inits: Vec<&Event> = exec.events().iter().filter(|e| e.is_initial()).collect();
        assert_eq!(inits.len(), 1);
        assert!(exec.validate().is_ok());
    }

    #[test]
    fn fr_derivation() {
        // w_init -> co -> w1; r reads from init; so fr(r, w1).
        let mut b = ExecutionBuilder::new();
        let r = b.read(p(0), Address(0x10), Value(0));
        let w1 = b.write(p(1), Address(0x10), Value(1));
        b.reads_from_initial(r);
        b.coherence_after_initial(w1);
        let exec = b.build();
        let fr = exec.fr();
        assert!(fr.contains(r, w1));
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn rf_external_vs_internal() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(p(0), Address(0x10), Value(1));
        let r_same = b.read(p(0), Address(0x10), Value(1));
        let r_other = b.read(p(1), Address(0x10), Value(1));
        b.reads_from(w, r_same);
        b.reads_from(w, r_other);
        b.coherence_after_initial(w);
        let exec = b.build();
        assert!(exec.rf_internal().contains(w, r_same));
        assert!(!exec.rf_internal().contains(w, r_other));
        assert!(exec.rf_external().contains(w, r_other));
        assert!(!exec.rf_external().contains(w, r_same));
    }

    #[test]
    fn validate_detects_missing_source() {
        let mut b = ExecutionBuilder::new();
        b.read(p(0), Address(0x10), Value(0));
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::ReadWithoutSource(EventId(0)))
        );
    }

    #[test]
    fn validate_detects_value_mismatch() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(p(0), Address(0x10), Value(1));
        let r = b.read(p(1), Address(0x10), Value(2));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::RfValueMismatch(w, r))
        );
    }

    #[test]
    fn validate_detects_address_mismatch() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(p(0), Address(0x10), Value(1));
        let r = b.read(p(1), Address(0x20), Value(1));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::RfAddressMismatch(w, r))
        );
    }

    #[test]
    fn validate_detects_cyclic_coherence() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write(p(0), Address(0x10), Value(1));
        let w2 = b.write(p(1), Address(0x10), Value(2));
        b.coherence(w1, w2);
        b.coherence(w2, w1);
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::CyclicCoherence(Address(0x10)))
        );
    }

    #[test]
    fn build_closes_coherence_transitively() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write(p(0), Address(0x10), Value(1));
        let w2 = b.write(p(0), Address(0x10), Value(2));
        let w3 = b.write(p(1), Address(0x10), Value(3));
        b.coherence(w1, w2);
        b.coherence(w2, w3);
        b.coherence_after_initial(w1);
        let exec = b.build();
        assert!(exec.co().contains(w1, w3));
        // Initial write ordered before all three.
        let init = exec
            .events()
            .iter()
            .find(|e| e.is_initial())
            .expect("init write exists")
            .id;
        assert!(exec.co().contains(init, w1));
        assert!(exec.co().contains(init, w2));
        assert!(exec.co().contains(init, w3));
    }

    #[test]
    fn rmw_shares_iiid() {
        let mut b = ExecutionBuilder::new();
        let (r, w) = b.rmw(p(0), Address(0x10), Value(0), Value(7));
        let next = b.read(p(0), Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.reads_from_initial(next);
        b.coherence_after_initial(w);
        let exec = b.build();
        assert_eq!(exec.event(r).iiid, exec.event(w).iiid);
        assert!(exec.po().contains(r, w));
        assert!(exec.po().contains(w, next));
        assert!(exec.validate().is_ok());
    }

    #[test]
    fn addresses_and_processors_are_sorted_unique() {
        let mut b = ExecutionBuilder::new();
        b.write(p(1), Address(0x20), Value(1));
        b.write(p(0), Address(0x10), Value(2));
        b.write(p(1), Address(0x10), Value(3));
        let exec = b.build();
        assert_eq!(exec.addresses(), vec![Address(0x10), Address(0x20)]);
        assert_eq!(exec.processors(), vec![p(0), p(1)]);
    }

    #[test]
    fn dependencies_are_recorded_per_kind_and_validated() {
        let mut b = ExecutionBuilder::new();
        let r = b.read(p(0), Address(0x10), Value(0));
        let r2 = b.read(p(0), Address(0x20), Value(0));
        let w = b.write(p(0), Address(0x30), Value(1));
        b.reads_from_initial(r);
        b.reads_from_initial(r2);
        b.coherence_after_initial(w);
        b.dependency(DepKind::Addr, r, r2);
        b.dependency(DepKind::Data, r2, w);
        let exec = b.build();
        assert!(exec.validate().is_ok());
        assert!(exec.deps().of(DepKind::Addr).contains(r, r2));
        assert!(exec.deps().of(DepKind::Data).contains(r2, w));
        assert!(exec.deps().of(DepKind::Ctrl).is_empty());
        assert_eq!(exec.deps().len(), 2);
        assert!(!exec.deps().is_empty());
        let all = exec.deps().union_all();
        assert!(all.contains(r, r2) && all.contains(r2, w));
    }

    #[test]
    fn validate_rejects_dependency_from_write() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(p(0), Address(0x10), Value(1));
        let r = b.read(p(0), Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        b.dependency(DepKind::Addr, w, r);
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::MalformedDependency(w, r))
        );
    }

    #[test]
    fn validate_rejects_cross_thread_dependency() {
        let mut b = ExecutionBuilder::new();
        let r0 = b.read(p(0), Address(0x10), Value(0));
        let r1 = b.read(p(1), Address(0x20), Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.dependency(DepKind::Ctrl, r0, r1);
        let exec = b.build();
        assert_eq!(
            exec.validate(),
            Err(WellFormednessError::MalformedDependency(r0, r1))
        );
    }

    #[test]
    fn explicit_poi_variants() {
        let mut b = ExecutionBuilder::new();
        let iiid0 = Iiid { pid: p(0), poi: 5 };
        let iiid1 = Iiid { pid: p(0), poi: 9 };
        let w = b.write_at(iiid0, Address(0x10), Value(1));
        let r = b.read_at(iiid1, Address(0x10), Value(1));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        let exec = b.build();
        assert!(exec.po().contains(w, r));
        assert!(exec.validate().is_ok());
    }
}
