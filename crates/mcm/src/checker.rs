//! The polynomial-time execution checker.
//!
//! In simulation all conflict orders (`rf`, `co`) are visible, so checking a
//! candidate execution against an axiomatic model reduces to a handful of
//! cycle searches over derived relations (paper §4.1).  The checker first
//! validates well-formedness of the recorded execution object (a malformed
//! object indicates an observer bug, reported distinctly), then evaluates
//! every [`Axiom`] of the target [`Architecture`] and reports the first
//! violated one together with a witness cycle for debugging.

use crate::event::EventId;
use crate::execution::{CandidateExecution, WellFormednessError};
use crate::model::{Architecture, Axiom};
use mcversi_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Executions checked (`try_check` invocations).
static CHECKS: telemetry::Counter = telemetry::Counter::new("mcm.checks");
/// Axioms evaluated across all checks.
static AXIOM_EVALS: telemetry::Counter = telemetry::Counter::new("mcm.axiom_evals");
/// Size (pair count) of each axiom's derived relation at evaluation time.
static RELATION_SIZE: telemetry::Histogram = telemetry::Histogram::new("mcm.relation.size");

/// A consistency violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the model that was checked (e.g. `"TSO"`).
    pub model: String,
    /// Name of the violated axiom (e.g. `"ghb"`).
    pub axiom: String,
    /// Witness: a cycle (for acyclicity axioms) or the offending pairs
    /// flattened into a list (for emptiness axioms).
    pub witness: Vec<EventId>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation of axiom '{}' (witness: {} events)",
            self.model,
            self.axiom,
            self.witness.len()
        )
    }
}

/// Result of checking one candidate execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The execution is allowed by the model.
    Valid,
    /// The execution violates the model.
    Invalid(Violation),
}

impl Verdict {
    /// Returns `true` if the execution was found valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }

    /// Returns `true` if the execution violates the model.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Invalid(_))
    }

    /// Returns the violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Valid => None,
            Verdict::Invalid(v) => Some(v),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Valid => write!(f, "valid"),
            Verdict::Invalid(v) => write!(f, "invalid: {v}"),
        }
    }
}

/// Errors returned by [`Checker::try_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The execution object itself is malformed (observer bug, not an MCM bug).
    MalformedExecution(WellFormednessError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::MalformedExecution(e) => write!(f, "malformed execution: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<WellFormednessError> for CheckError {
    fn from(e: WellFormednessError) -> Self {
        CheckError::MalformedExecution(e)
    }
}

/// Checks candidate executions against a target model.
///
/// The checker borrows the model so one checker can be reused across the many
/// test-run iterations of a verification campaign.
#[derive(Debug, Clone, Copy)]
pub struct Checker<'m> {
    model: &'m dyn Architecture,
    validate_well_formedness: bool,
}

impl<'m> Checker<'m> {
    /// Creates a checker for the given model.
    pub fn new(model: &'m dyn Architecture) -> Self {
        Checker {
            model,
            validate_well_formedness: true,
        }
    }

    /// Disables the well-formedness pre-check (useful in benchmarks where the
    /// execution is known to be well formed).
    pub fn without_well_formedness_check(mut self) -> Self {
        self.validate_well_formedness = false;
        self
    }

    /// The model this checker verifies against.
    pub fn model(&self) -> &dyn Architecture {
        self.model
    }

    /// Checks an execution, panicking if the execution object is malformed.
    ///
    /// # Panics
    ///
    /// Panics if the execution fails well-formedness validation; use
    /// [`try_check`](Self::try_check) to handle that case gracefully.
    pub fn check(&self, exec: &CandidateExecution) -> Verdict {
        self.try_check(exec)
            .expect("execution object must be well formed")
    }

    /// Checks an execution.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::MalformedExecution`] if the recorded execution
    /// object is not well formed (e.g. a read with no reads-from source).
    pub fn try_check(&self, exec: &CandidateExecution) -> Result<Verdict, CheckError> {
        if self.validate_well_formedness {
            exec.validate()?;
        }
        CHECKS.incr();
        for axiom in self.model.axioms(exec) {
            AXIOM_EVALS.incr();
            match axiom {
                Axiom::Acyclic { name, relation } => {
                    RELATION_SIZE.record(relation.len() as u64);
                    if let Some(cycle) = relation.find_cycle() {
                        return Ok(Verdict::Invalid(Violation {
                            model: self.model.name().to_string(),
                            axiom: name.to_string(),
                            witness: cycle,
                        }));
                    }
                }
                Axiom::Empty { name, relation } => {
                    RELATION_SIZE.record(relation.len() as u64);
                    if !relation.is_empty() {
                        let witness = relation.iter().flat_map(|(a, b)| [a, b]).collect();
                        return Ok(Verdict::Invalid(Violation {
                            model: self.model.name().to_string(),
                            axiom: name.to_string(),
                            witness,
                        }));
                    }
                }
            }
        }
        Ok(Verdict::Valid)
    }

    /// Checks several executions (e.g. all iterations of one test-run) and
    /// returns the first violation found, if any.
    ///
    /// Executions are checked in iteration order and checking stops at the
    /// first violation, so later executions are never validated once one
    /// fails.  An **empty** iterator yields `Ok(Verdict::Valid)` — vacuous
    /// truth, matching the runner's treatment of a test-run that produced no
    /// complete executions.  A **singleton** iterator is exactly equivalent
    /// to [`try_check`](Self::try_check) on that execution.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::MalformedExecution`] as soon as any execution
    /// fails well-formedness validation; executions after the malformed one
    /// are not checked, and no verdict is produced for those before it.
    pub fn check_all<'a, I>(&self, execs: I) -> Result<Verdict, CheckError>
    where
        I: IntoIterator<Item = &'a CandidateExecution>,
    {
        for exec in execs {
            let verdict = self.try_check(exec)?;
            if verdict.is_violation() {
                return Ok(verdict);
            }
        }
        Ok(Verdict::Valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Address, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;
    use crate::model::sc::Sc;
    use crate::model::tso::Tso;

    fn mp_violation() -> CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(0));
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    #[test]
    fn violation_carries_model_axiom_and_witness() {
        let exec = mp_violation();
        let verdict = Checker::new(&Tso).check(&exec);
        let violation = verdict.violation().expect("must be a violation");
        assert_eq!(violation.model, "TSO");
        assert!(!violation.witness.is_empty());
        assert!(!format!("{violation}").is_empty());
        assert!(format!("{verdict}").starts_with("invalid"));
    }

    #[test]
    fn valid_verdict_display() {
        let v = Verdict::Valid;
        assert!(v.is_valid());
        assert!(!v.is_violation());
        assert_eq!(v.violation(), None);
        assert_eq!(format!("{v}"), "valid");
    }

    #[test]
    fn malformed_execution_reported_as_error() {
        let mut b = ExecutionBuilder::new();
        b.read(ProcessorId(0), Address(0x10), Value(0));
        let exec = b.build();
        let err = Checker::new(&Tso).try_check(&exec).unwrap_err();
        assert!(matches!(err, CheckError::MalformedExecution(_)));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn without_well_formedness_check_skips_validation() {
        let mut b = ExecutionBuilder::new();
        b.read(ProcessorId(0), Address(0x10), Value(0));
        let exec = b.build();
        // Skipping validation: the read with no source simply does not
        // constrain anything, so the verdict is Valid rather than an error.
        let verdict = Checker::new(&Tso)
            .without_well_formedness_check()
            .try_check(&exec)
            .unwrap();
        assert!(verdict.is_valid());
    }

    #[test]
    fn check_all_reports_first_violation() {
        let mut ok = ExecutionBuilder::new();
        let w = ok.write(ProcessorId(0), Address(0x10), Value(1));
        ok.coherence_after_initial(w);
        let ok = ok.build();
        let bad = mp_violation();
        let verdict = Checker::new(&Tso).check_all([&ok, &bad]).unwrap();
        assert!(verdict.is_violation());
        let verdict = Checker::new(&Tso).check_all([&ok]).unwrap();
        assert!(verdict.is_valid());
    }

    #[test]
    fn check_all_of_no_executions_is_vacuously_valid() {
        let verdict = Checker::new(&Tso).check_all(std::iter::empty()).unwrap();
        assert_eq!(verdict, Verdict::Valid);
    }

    #[test]
    fn check_all_singleton_matches_try_check() {
        let bad = mp_violation();
        let checker = Checker::new(&Tso);
        let collective = checker.check_all([&bad]).unwrap();
        let individual = checker.try_check(&bad).unwrap();
        assert_eq!(collective, individual);
        assert!(collective.is_violation());
    }

    #[test]
    fn check_all_stops_at_the_first_malformed_execution() {
        // A read with no rf source is malformed; it must surface as an error
        // even when a violating execution precedes it in the batch.
        let mut b = ExecutionBuilder::new();
        b.read(ProcessorId(0), Address(0x10), Value(1));
        let malformed = b.build();
        let bad = mp_violation();
        let err = Checker::new(&Tso).check_all([&bad, &malformed]);
        assert!(
            err.is_ok_and(|v| v.is_violation()),
            "earlier violation wins"
        );
        let err = Checker::new(&Tso).check_all([&malformed, &bad]);
        assert!(err.is_err(), "malformed execution reported before verdict");
    }

    #[test]
    fn checker_is_model_relative() {
        // SB outcome: valid under TSO, invalid under SC.
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let w0 = b.write(p0, x, Value(1));
        let r0 = b.read(p0, y, Value(0));
        let w1 = b.write(p1, y, Value(1));
        let r1 = b.read(p1, x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        assert!(Checker::new(&Tso).check(&exec).is_valid());
        assert!(Checker::new(&Sc).check(&exec).is_violation());
    }

    #[test]
    fn empty_execution_is_valid() {
        let exec = ExecutionBuilder::new().build();
        assert!(Checker::new(&Tso).check(&exec).is_valid());
        assert!(exec.is_empty());
    }
}
