//! Static per-thread structure of a test: program order and fence placement.
//!
//! The test generator lowers each test into a per-thread sequence of events;
//! this module derives the *static orders* the checker needs before the test
//! executes (paper §4.1: "All static orders required to compute the preserved
//! program order (ppo) are gathered before first execution of a test").

use crate::event::{Event, EventId, ProcessorId};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// Builds the program order (`po`) relation from events.
///
/// `po` totally orders the events of each thread by their program-order index;
/// events of different threads and initial writes are unrelated.
///
/// The relation returned is the *transitive* program order (every pair of
/// same-thread events in order), which is what axiomatic models quantify over.
pub fn program_order(events: &[Event]) -> Relation {
    let mut per_thread: BTreeMap<ProcessorId, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        if let Some(iiid) = ev.iiid {
            per_thread.entry(iiid.pid).or_default().push(ev);
        }
    }
    let mut po = Relation::new();
    for thread in per_thread.values_mut() {
        thread.sort_by_key(|ev| (ev.iiid.expect("thread event has iiid").poi, ev.id));
        for i in 0..thread.len() {
            for j in (i + 1)..thread.len() {
                // Events from the same instruction (same poi, e.g. the two
                // halves of an RMW) are ordered read -> write.
                let a = thread[i];
                let b = thread[j];
                let same_instr = a.iiid.map(|x| x.poi) == b.iiid.map(|x| x.poi);
                if same_instr {
                    if a.is_read() && b.is_write() {
                        po.insert(a.id, b.id);
                    }
                } else {
                    po.insert(a.id, b.id);
                }
            }
        }
    }
    po
}

/// Restricts `po` to *immediate* program order: each event related only to the
/// next event of its thread.  Useful for display and for building per-thread
/// adjacency views.
pub fn immediate_program_order(events: &[Event]) -> Relation {
    let mut per_thread: BTreeMap<ProcessorId, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        if let Some(iiid) = ev.iiid {
            per_thread.entry(iiid.pid).or_default().push(ev);
        }
    }
    let mut po = Relation::new();
    for thread in per_thread.values_mut() {
        thread.sort_by_key(|ev| (ev.iiid.expect("thread event has iiid").poi, ev.id));
        for pair in thread.windows(2) {
            po.insert(pair[0].id, pair[1].id);
        }
    }
    po
}

/// Returns the per-thread event id sequences in program order.
pub fn thread_sequences(events: &[Event]) -> BTreeMap<ProcessorId, Vec<EventId>> {
    let mut per_thread: BTreeMap<ProcessorId, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        if let Some(iiid) = ev.iiid {
            per_thread.entry(iiid.pid).or_default().push(ev);
        }
    }
    per_thread
        .into_iter()
        .map(|(pid, mut evs)| {
            evs.sort_by_key(|ev| (ev.iiid.expect("thread event has iiid").poi, ev.id));
            (pid, evs.into_iter().map(|e| e.id).collect())
        })
        .collect()
}

/// Restriction of a relation to pairs of events accessing the same address
/// (`po-loc` when applied to `po`).
pub fn same_address(rel: &Relation, events: &[Event]) -> Relation {
    let addr_of: BTreeMap<EventId, _> = events
        .iter()
        .filter_map(|e| e.addr.map(|a| (e.id, a)))
        .collect();
    rel.filter(|a, b| match (addr_of.get(&a), addr_of.get(&b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Address, EventKind, Iiid, Value};

    fn mk(id: u32, pid: u32, poi: u32, kind: EventKind, addr: u64) -> Event {
        Event {
            id: EventId(id),
            iiid: Some(Iiid {
                pid: ProcessorId(pid),
                poi,
            }),
            kind,
            addr: Some(Address(addr)),
            value: Value(0),
        }
    }

    #[test]
    fn po_orders_within_thread_only() {
        let events = vec![
            mk(0, 0, 0, EventKind::Write, 0x10),
            mk(1, 0, 1, EventKind::Write, 0x20),
            mk(2, 1, 0, EventKind::Read, 0x20),
            mk(3, 1, 1, EventKind::Read, 0x10),
        ];
        let po = program_order(&events);
        assert!(po.contains(EventId(0), EventId(1)));
        assert!(po.contains(EventId(2), EventId(3)));
        assert!(!po.contains(EventId(0), EventId(2)));
        assert!(!po.contains(EventId(1), EventId(0)));
        assert_eq!(po.len(), 2);
    }

    #[test]
    fn po_is_transitive() {
        let events = vec![
            mk(0, 0, 0, EventKind::Write, 0x10),
            mk(1, 0, 1, EventKind::Write, 0x20),
            mk(2, 0, 2, EventKind::Read, 0x30),
        ];
        let po = program_order(&events);
        assert!(po.contains(EventId(0), EventId(2)));
        assert_eq!(po.len(), 3);
    }

    #[test]
    fn immediate_po_is_chain() {
        let events = vec![
            mk(0, 0, 0, EventKind::Write, 0x10),
            mk(1, 0, 1, EventKind::Write, 0x20),
            mk(2, 0, 2, EventKind::Read, 0x30),
        ];
        let ipo = immediate_program_order(&events);
        assert_eq!(ipo.len(), 2);
        assert!(ipo.contains(EventId(0), EventId(1)));
        assert!(ipo.contains(EventId(1), EventId(2)));
        assert!(!ipo.contains(EventId(0), EventId(2)));
    }

    #[test]
    fn rmw_halves_ordered_read_before_write() {
        let events = vec![
            mk(0, 0, 0, EventKind::RmwRead, 0x10),
            mk(1, 0, 0, EventKind::RmwWrite, 0x10),
            mk(2, 0, 1, EventKind::Read, 0x20),
        ];
        let po = program_order(&events);
        assert!(po.contains(EventId(0), EventId(1)));
        assert!(!po.contains(EventId(1), EventId(0)));
        assert!(po.contains(EventId(0), EventId(2)));
        assert!(po.contains(EventId(1), EventId(2)));
    }

    #[test]
    fn initial_events_not_in_po() {
        let mut events = vec![mk(1, 0, 0, EventKind::Read, 0x10)];
        events.push(Event {
            id: EventId(0),
            iiid: None,
            kind: EventKind::Write,
            addr: Some(Address(0x10)),
            value: Value::INITIAL,
        });
        let po = program_order(&events);
        assert!(po.is_empty());
    }

    #[test]
    fn thread_sequences_sorted_by_poi() {
        let events = vec![
            mk(5, 0, 2, EventKind::Read, 0x10),
            mk(3, 0, 0, EventKind::Write, 0x10),
            mk(4, 0, 1, EventKind::Write, 0x20),
            mk(6, 1, 0, EventKind::Read, 0x20),
        ];
        let seqs = thread_sequences(&events);
        assert_eq!(
            seqs[&ProcessorId(0)],
            vec![EventId(3), EventId(4), EventId(5)]
        );
        assert_eq!(seqs[&ProcessorId(1)], vec![EventId(6)]);
    }

    #[test]
    fn same_address_restriction() {
        let events = vec![
            mk(0, 0, 0, EventKind::Write, 0x10),
            mk(1, 0, 1, EventKind::Write, 0x20),
            mk(2, 0, 2, EventKind::Read, 0x10),
        ];
        let po = program_order(&events);
        let poloc = same_address(&po, &events);
        assert!(poloc.contains(EventId(0), EventId(2)));
        assert!(!poloc.contains(EventId(0), EventId(1)));
        assert!(!poloc.contains(EventId(1), EventId(2)));
    }
}
