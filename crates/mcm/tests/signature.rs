//! Property tests for execution signatures and the cycle oracle.
//!
//! The collective-checking soundness argument rests on the signature being a
//! *canonical* encoding of the observable outcome:
//!
//! * two observations of the same abstract execution — same per-thread
//!   programs, same reads-from attribution, same coherence order — must
//!   produce identical signatures no matter in which order the observer
//!   recorded the events;
//! * two executions that differ in rf attribution, coherence order or final
//!   memory state must never collide.
//!
//! The cycle oracle must additionally never certify an execution the
//! axiomatic checker rejects (and never hint "forbidden" on one it accepts).

use mcversi_mcm::checker::Checker;
use mcversi_mcm::execution::ExecutionBuilder;
use mcversi_mcm::signature::{classify_execution, ExecutionSignature, OracleVerdict};
use mcversi_mcm::{
    Address, CandidateExecution, DepKind, EventId, FenceKind, ModelKind, ProcessorId, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One abstract (builder-independent) memory operation.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Read(u64),
    Write(u64, u64),
}

/// A `(thread, index)` operation slot, the event key a [`Plan`] uses instead
/// of builder-assigned event ids.
type Slot = (usize, usize);

/// An abstract execution: per-thread programs plus attribution choices,
/// all keyed by `(thread, index)` rather than event id, so it can be
/// replayed into an `ExecutionBuilder` in any cross-thread interleaving.
#[derive(Debug, Clone)]
struct Plan {
    threads: Vec<Vec<OpKind>>,
    /// For each read slot: the write slot it observes, or `None` for the
    /// initial value.
    rf: Vec<(Slot, Option<Slot>)>,
    /// Per address: the coherence order over its writes.
    co: Vec<(u64, Vec<Slot>)>,
}

fn addr(i: u64) -> Address {
    Address(0x1000 + i * 0x40)
}

fn gen_plan(seed: u64) -> Plan {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_threads = rng.gen_range(2..4usize);
    let num_addrs = rng.gen_range(2..4u64);
    let mut threads: Vec<Vec<OpKind>> = Vec::new();
    let mut next_value = 1u64;
    let mut reads: Vec<(usize, usize)> = Vec::new();
    let mut writes_by_addr: BTreeMap<u64, Vec<(usize, usize)>> = BTreeMap::new();
    for t in 0..num_threads {
        let mut ops: Vec<OpKind> = Vec::new();
        for i in 0..rng.gen_range(2..6usize) {
            let a = rng.gen_range(0..num_addrs);
            if rng.gen_bool(0.45) {
                reads.push((t, i));
                ops.push(OpKind::Read(a));
            } else {
                writes_by_addr.entry(a).or_default().push((t, i));
                ops.push(OpKind::Write(a, next_value));
                next_value += 1;
            }
        }
        threads.push(ops);
    }
    // Attribute each read to a random same-address write or the initial value.
    let rf = reads
        .iter()
        .map(|&(t, i)| {
            let OpKind::Read(a) = threads[t][i] else {
                unreachable!("reads list only holds reads")
            };
            let candidates = writes_by_addr.get(&a).cloned().unwrap_or_default();
            let source = if candidates.is_empty() || rng.gen_bool(0.25) {
                None
            } else {
                Some(candidates[rng.gen_range(0..candidates.len())])
            };
            ((t, i), source)
        })
        .collect();
    // Random per-address coherence permutation.
    let co = writes_by_addr
        .into_iter()
        .map(|(a, mut order)| {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                order.swap(i, j);
            }
            (a, order)
        })
        .collect();
    Plan { threads, rf, co }
}

/// Replays a plan into a concrete execution.  With `interleave` the threads
/// are recorded round-robin (as a parallel observer would see them); without
/// it, thread by thread.  Event ids differ between the two; instruction ids
/// and all attributed relations do not.
fn build(plan: &Plan, interleave: bool) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let mut ids: BTreeMap<(usize, usize), EventId> = BTreeMap::new();
    let value_of = |key: (usize, usize)| -> u64 {
        match plan.threads[key.0][key.1] {
            OpKind::Write(_, v) => v,
            OpKind::Read(_) => unreachable!("rf source must be a write"),
        }
    };
    let mut order: Vec<(usize, usize)> = Vec::new();
    if interleave {
        let longest = plan.threads.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (t, ops) in plan.threads.iter().enumerate() {
                if i < ops.len() {
                    order.push((t, i));
                }
            }
        }
    } else {
        for (t, ops) in plan.threads.iter().enumerate() {
            for i in 0..ops.len() {
                order.push((t, i));
            }
        }
    }
    for (t, i) in order {
        let pid = ProcessorId(t as u32);
        let id = match plan.threads[t][i] {
            OpKind::Read(a) => b.read(pid, addr(a), Value(0)),
            OpKind::Write(a, v) => b.write(pid, addr(a), Value(v)),
        };
        ids.insert((t, i), id);
    }
    for &(reader, source) in &plan.rf {
        match source {
            Some(writer) => {
                b.set_event_value(ids[&reader], Value(value_of(writer)));
                b.reads_from(ids[&writer], ids[&reader]);
            }
            None => b.reads_from_initial(ids[&reader]),
        }
    }
    for (_, chain) in &plan.co {
        if let Some(&first) = chain.first() {
            b.coherence_after_initial(ids[&first]);
        }
        for pair in chain.windows(2) {
            b.coherence(ids[&pair[0]], ids[&pair[1]]);
        }
    }
    b.build()
}

/// Arbitrary well-formed execution with fences, dependencies and RMWs (the
/// oracle must stay sound on all of them).
fn random_execution(seed: u64) -> CandidateExecution {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExecutionBuilder::new();
    let threads = rng.gen_range(2..5u32);
    let num_addrs = rng.gen_range(2..4u64);
    let mut reads: Vec<(EventId, Address)> = Vec::new();
    let mut writes: Vec<(EventId, Address, Value)> = Vec::new();
    let mut next_value = 1u64;
    for t in 0..threads {
        let pid = ProcessorId(t);
        let mut last_load: Option<EventId> = None;
        for _ in 0..rng.gen_range(2..6usize) {
            let a = addr(rng.gen_range(0..num_addrs));
            match rng.gen_range(0..100u32) {
                0..=34 => {
                    let r = b.read(pid, a, Value(0));
                    if rng.gen_bool(0.3) {
                        if let Some(src) = last_load {
                            b.dependency(DepKind::Addr, src, r);
                        }
                    }
                    reads.push((r, a));
                    last_load = Some(r);
                }
                35..=69 => {
                    let w = b.write(pid, a, Value(next_value));
                    if rng.gen_bool(0.3) {
                        if let Some(src) = last_load {
                            b.dependency(DepKind::Data, src, w);
                        }
                    }
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                }
                70..=84 => {
                    let kind = FenceKind::ALL[rng.gen_range(0..FenceKind::ALL.len())];
                    b.fence(pid, kind);
                }
                _ => {
                    let (r, w) = b.rmw(pid, a, Value(0), Value(next_value));
                    reads.push((r, a));
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                    last_load = None;
                }
            }
        }
    }
    for &(r, a) in &reads {
        let candidates: Vec<(EventId, Value)> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, v)| (w, v))
            .collect();
        if candidates.is_empty() || rng.gen_bool(0.25) {
            b.reads_from_initial(r);
        } else {
            let (w, v) = candidates[rng.gen_range(0..candidates.len())];
            b.set_event_value(r, v);
            b.reads_from(w, r);
        }
    }
    for i in 0..num_addrs {
        let a = addr(i);
        let mut order: Vec<EventId> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, _)| w)
            .collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        if let Some(&first) = order.first() {
            b.coherence_after_initial(first);
        }
        for pair in order.windows(2) {
            b.coherence(pair[0], pair[1]);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recording the same abstract execution in a different cross-thread
    /// interleaving (different event ids throughout) yields the identical
    /// signature and digest.
    #[test]
    fn permuted_observations_hash_identically(seed in 0u64..5000) {
        let plan = gen_plan(seed);
        let sequential = ExecutionSignature::of(&build(&plan, false), seed);
        let interleaved = ExecutionSignature::of(&build(&plan, true), seed);
        prop_assert_eq!(&sequential, &interleaved);
        prop_assert_eq!(sequential.digest(), interleaved.digest());
    }

    /// Re-attributing any single read to a different source changes the
    /// signature: rf attribution can never silently collide.
    #[test]
    fn different_rf_attribution_never_collides(seed in 0u64..5000, pick in 0usize..64) {
        let plan = gen_plan(seed);
        // Candidate re-attributions for some read: to-initial if attributed,
        // or to the first write if reading the initial value.
        let attributed: Vec<usize> = (0..plan.rf.len())
            .filter(|&i| {
                let ((t, idx), src) = plan.rf[i];
                let OpKind::Read(a) = plan.threads[t][idx] else { return false };
                match src {
                    Some(_) => true,
                    // Only flippable when some write to `a` exists.
                    None => plan.co.iter().any(|&(ca, ref chain)| ca == a && !chain.is_empty()),
                }
            })
            .collect();
        if !attributed.is_empty() {
            let i = attributed[pick % attributed.len()];
            let mut mutated = plan.clone();
            let ((t, idx), src) = plan.rf[i];
            let OpKind::Read(a) = plan.threads[t][idx] else { unreachable!() };
            mutated.rf[i].1 = match src {
                Some(_) => None,
                None => Some(
                    plan.co
                        .iter()
                        .find(|&&(ca, _)| ca == a)
                        .map(|(_, chain)| chain[0])
                        .expect("guarded by `attributed` filter"),
                ),
            };
            let original = ExecutionSignature::of(&build(&plan, false), seed);
            let changed = ExecutionSignature::of(&build(&mutated, false), seed);
            prop_assert_ne!(original, changed);
        }
    }

    /// Reversing the coherence order of any multi-write address changes the
    /// signature: coherence/final-state differences can never collide.
    #[test]
    fn different_coherence_order_never_collides(seed in 0u64..5000) {
        let plan = gen_plan(seed);
        if let Some(target) = plan.co.iter().position(|(_, chain)| chain.len() >= 2) {
            let mut mutated = plan.clone();
            mutated.co[target].1.reverse();
            let original = ExecutionSignature::of(&build(&plan, false), seed);
            let changed = ExecutionSignature::of(&build(&mutated, false), seed);
            prop_assert_ne!(original, changed);
        }
    }

    /// The oracle is sound against the axiomatic checker on arbitrary
    /// well-formed executions: a zero-checker "valid" certificate is never
    /// wrong, and a forbidden-cycle hint always corresponds to a real
    /// violation.
    #[test]
    fn oracle_never_contradicts_the_checker(seed in 0u64..2000) {
        let exec = random_execution(seed);
        prop_assert!(exec.validate().is_ok(), "malformed: {:?}", exec.validate());
        for model in ModelKind::ALL {
            let checker = Checker::new(model.instance()).check(&exec);
            match classify_execution(&exec, model) {
                OracleVerdict::ScConsistent | OracleVerdict::AllowedCycles => prop_assert!(
                    checker.is_valid(),
                    "seed {seed}, {model}: oracle certifies but checker rejects"
                ),
                OracleVerdict::ForbiddenCycle => prop_assert!(
                    checker.is_violation(),
                    "seed {seed}, {model}: oracle hints forbidden but checker accepts"
                ),
                OracleVerdict::Undecided => {}
            }
        }
    }
}
