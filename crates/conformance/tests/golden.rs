//! Pins the verdict of every golden trace fixture through the library path
//! (parse → lower → infer coherence → vector-clock check), and — for the
//! fixtures a complete execution exists for — cross-checks against the
//! axiomatic checker.  The `mcversi-check` binary round-trips the same
//! fixtures in `crates/core/tests/check_traces.rs`.

use mcversi_conformance::{check_lowered, parse, AbstainReason, VcVerdict};
use mcversi_mcm::{Checker, ModelKind};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// (fixture, expected verdict) — the binary's exit-code pins mirror these.
const EXPECTATIONS: [(&str, Expected); 7] = [
    ("sc_valid.trace", Expected::Valid),
    ("sc_violation.trace", Expected::Violation),
    ("tso_valid.trace", Expected::Valid),
    ("tso_violation.trace", Expected::Violation),
    ("armish_valid.trace", Expected::ValidViaFallback),
    ("rmo_violation.trace", Expected::Violation),
    ("tso_undecided.trace", Expected::Undecided),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    /// The vector-clock pass alone certifies the trace.
    Valid,
    /// The trace violates its model.
    Violation,
    /// The vector-clock pass abstains; the axiomatic checker certifies.
    ValidViaFallback,
    /// The observations underdetermine the coherence order.
    Undecided,
}

#[test]
fn golden_fixtures_produce_their_pinned_verdicts() {
    for (name, expected) in EXPECTATIONS {
        let program = parse(&fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let model = program.model.unwrap_or(ModelKind::Tso);
        let lowered = program.lower().unwrap_or_else(|e| panic!("{name}: {e}"));
        let (verdict, exec) = check_lowered(&lowered, model);
        match expected {
            Expected::Valid => {
                assert!(verdict.is_valid(), "{name}: expected valid, got {verdict}");
            }
            Expected::Violation => {
                assert!(
                    verdict.is_violation(),
                    "{name}: expected violation, got {verdict}"
                );
            }
            Expected::ValidViaFallback => {
                assert!(
                    matches!(verdict, VcVerdict::Abstain(AbstainReason::WeakModel(_))),
                    "{name}: expected a weak-model abstention, got {verdict}"
                );
                let exec = exec
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name}: no execution"));
                let axiomatic = Checker::new(model.instance()).check(exec);
                assert!(
                    !axiomatic.is_violation(),
                    "{name}: axiomatic fallback must certify the trace"
                );
            }
            Expected::Undecided => {
                assert!(
                    matches!(
                        verdict,
                        VcVerdict::Abstain(AbstainReason::CoherenceUnderdetermined(_))
                    ),
                    "{name}: expected an underdetermined abstention, got {verdict}"
                );
            }
        }
        // Wherever a complete execution exists, the axiomatic checker must
        // agree with the decided vector-clock verdicts.
        if let Some(exec) = exec {
            if verdict.is_valid() || verdict.is_violation() {
                let axiomatic = Checker::new(model.instance()).check(&exec);
                assert_eq!(
                    verdict.is_violation(),
                    axiomatic.is_violation(),
                    "{name}: vc and axiomatic verdicts disagree"
                );
            }
        }
    }
}

#[test]
fn model_override_changes_the_verdict_of_the_sb_shape() {
    // The SB fixture is TSO-valid but SC-forbidden: the same trace checked
    // against SC must flip to a violation (this is what `--model` does).
    let program = parse(&fixture("tso_valid.trace")).expect("parses");
    let lowered = program.lower().expect("lowers");
    let (tso, _) = check_lowered(&lowered, ModelKind::Tso);
    let (sc, _) = check_lowered(&lowered, ModelKind::Sc);
    assert!(tso.is_valid());
    assert!(sc.is_violation());
}
