//! Polynomial-time conformance checking for McVerSi.
//!
//! Two halves, both motivated by the cost profile of the axiomatic checker
//! in `mcversi-mcm`:
//!
//! * [`vc`] — a vector-clock/frontier checker.  Per-location coherence
//!   order is inferred from the observed reads-from relation and the final
//!   memory state, then per-thread frontiers are propagated monotonically
//!   over the model's happens-before union.  The result is a three-valued
//!   [`VcVerdict`]: `Valid` and `Violation` are *exact* for SC and TSO,
//!   while the relaxed models abstain to the axiomatic checker whenever
//!   the cheap SC-shaped argument does not already certify the execution.
//!   The runner uses this as a fast first pass (`MCVERSI_CHECKING=vc`).
//!
//! * [`trace`] — black-box trace ingestion.  A versioned Axe-style
//!   `load/store/resp/fence` text format parsed by hand and lowered into a
//!   [`mcversi_mcm::CandidateExecution`], so traces
//!   from *external* simulators or RTL testbenches flow through the same
//!   checker stack via the `mcversi-check` binary.
//!
//! The glue between the halves is [`check_lowered`]: lower a trace, infer
//! the coherence order it left implicit, and run the vector-clock decision.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod trace;
pub mod vc;

pub use trace::{parse, LoweredTrace, TraceError, TraceOp, TraceProgram, TRACE_MAGIC_V1};
pub use vc::{
    frontier_acyclic, infer_coherence, AbstainReason, CoherenceInference, VcChecker, VcVerdict,
    VcWitness,
};

use mcversi_mcm::execution::CandidateExecution;
use mcversi_mcm::ModelKind;

/// Checks a lowered trace end to end: coherence inference first, then the
/// vector-clock decision for `model`.
///
/// Returns the completed execution alongside the verdict when inference
/// succeeded, so callers needing an authoritative diagnosis can hand the
/// same execution to the axiomatic [`Checker`](mcversi_mcm::Checker).
/// Inference outcomes map onto the verdict lattice:
///
/// * a coherence *contradiction* (the observations admit no coherence
///   order) violates sc-per-location under every model;
/// * a *final-state mismatch* (no store produced the observed final value)
///   is reported as a `final-state` violation;
/// * an *underdetermined* order abstains — only the axiomatic checker can
///   enumerate the completions.
pub fn check_lowered(
    lowered: &LoweredTrace,
    model: ModelKind,
) -> (VcVerdict, Option<CandidateExecution>) {
    match infer_coherence(&lowered.exec, &lowered.finals) {
        CoherenceInference::Complete(exec) => {
            let verdict = VcChecker::new(model).check(&exec);
            (verdict, Some(*exec))
        }
        CoherenceInference::Contradiction { witness, .. } => (
            VcVerdict::Violation(VcWitness {
                axiom: "sc-per-location",
                cycle: witness,
            }),
            None,
        ),
        CoherenceInference::FinalMismatch { .. } => (
            VcVerdict::Violation(VcWitness {
                axiom: "final-state",
                cycle: Vec::new(),
            }),
            None,
        ),
        CoherenceInference::Underdetermined { addr } => (
            VcVerdict::Abstain(AbstainReason::CoherenceUnderdetermined(addr)),
            None,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_trace_flows_from_text_to_verdict() {
        let text = "\
mcversi-trace v1
model sc
store 0 0x100 1
store 0 0x140 1
load 1 0x140
resp 1 1
load 1 0x100
resp 1 0
final 0x100 1
final 0x140 1
";
        let lowered = parse(text).expect("parses").lower().expect("lowers");
        let (verdict, exec) = check_lowered(&lowered, ModelKind::Sc);
        assert!(verdict.is_violation(), "MP with stale data is SC-forbidden");
        let exec = exec.expect("inference completed");
        let axiomatic = mcversi_mcm::Checker::new(ModelKind::Sc.instance()).check(&exec);
        assert!(axiomatic.is_violation(), "vc and axiomatic verdicts agree");
    }
}
