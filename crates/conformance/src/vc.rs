//! The vector-clock / frontier conformance checker.
//!
//! Roy et al.'s polynomial-time memory-consistency verification decides
//! conformance by *frontier propagation*: events commit one at a time, a
//! per-thread vector clock records the committed frontier, and an event may
//! commit only once every event that must precede it has committed.  The
//! execution conforms exactly when the frontier can be advanced to exhaustion;
//! a stuck frontier witnesses a cycle among the remaining events.
//!
//! On a [`CandidateExecution`] with complete conflict orders this degenerates
//! to acyclicity of the model's happens-before unions, which is what
//! [`frontier_acyclic`] checks — a Kahn-style worklist that never materialises
//! transitive closures, unlike the axiomatic [`Checker`]'s relation algebra.
//! The verdict is *exact* for SC and TSO (the unions mirror their axioms
//! one-for-one); for the dependency-ordered models the checker decides the
//! po-loc/coherence/atomicity axioms plus the SC sufficient condition and
//! [abstains](VcVerdict::Abstain) otherwise, leaving the axiomatic checker as
//! the authority.
//!
//! The second half, [`infer_coherence`], reconstructs per-location coherence
//! order for black-box traces where `co` is unobserved: the saturation rules
//! forced by sc-per-location (write→write, write→read, read→write and
//! read→read program order, plus the observed final state) either complete
//! `co`, contradict each other (a definite violation), or leave writes
//! unordered (the checker abstains rather than search totalisations).
//!
//! [`Checker`]: mcversi_mcm::checker::Checker

use mcversi_mcm::event::{Address, EventId, FenceKind, Value};
use mcversi_mcm::execution::CandidateExecution;
use mcversi_mcm::model::{self, ModelKind};
use mcversi_mcm::relation::Relation;
use mcversi_telemetry as telemetry;
use std::fmt;

/// Executions the vector-clock pass certified valid (no axiomatic check run).
static VC_PASS: telemetry::Counter = telemetry::Counter::new("vc.pass");
/// Violations found by the vector-clock pass (the axiomatic checker is still
/// consulted for the authoritative witness).
static VC_FALLBACK: telemetry::Counter = telemetry::Counter::new("vc.fallback");
/// Executions the vector-clock pass could not decide.
static VC_ABSTAIN: telemetry::Counter = telemetry::Counter::new("vc.abstain");

/// A violation witnessed by the frontier checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcWitness {
    /// Name of the axiom whose relation the stuck frontier witnessed a cycle
    /// in (matches the axiomatic checker's axiom names).
    pub axiom: &'static str,
    /// The witnessing cycle (or offending pairs flattened, for emptiness
    /// axioms), as event ids of the checked execution.
    pub cycle: Vec<EventId>,
}

impl fmt::Display for VcWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontier stuck on axiom '{}' ({} events)",
            self.axiom,
            self.cycle.len()
        )
    }
}

/// Why the vector-clock checker abstained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstainReason {
    /// The target model is weaker than TSO and neither the decided axioms nor
    /// the SC sufficient condition settled the verdict.
    WeakModel(ModelKind),
    /// Coherence inference left two writes to this address unordered, so the
    /// trace admits several coherence orders and a one-pass decision would
    /// have to search them.
    CoherenceUnderdetermined(Address),
    /// The execution object is malformed; the axiomatic checker reports this
    /// case authoritatively.
    Malformed(String),
}

impl fmt::Display for AbstainReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstainReason::WeakModel(m) => {
                write!(
                    f,
                    "model {m} is weaker than TSO and no decided axiom settled it"
                )
            }
            AbstainReason::CoherenceUnderdetermined(a) => {
                write!(f, "coherence order for {a} is underdetermined by the trace")
            }
            AbstainReason::Malformed(e) => write!(f, "malformed execution: {e}"),
        }
    }
}

/// The three-valued verdict of the vector-clock first pass.
///
/// `Valid` is always sound (the axiomatic checker would also accept);
/// `Violation` is always sound for SC and TSO and, for weaker models, only
/// produced from axioms every model shares; `Abstain` means the pass could
/// not decide and the caller must fall back to the axiomatic checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcVerdict {
    /// The execution conforms to the model.
    Valid,
    /// The execution violates the model; the witness names the broken axiom.
    Violation(VcWitness),
    /// The pass could not decide; consult the axiomatic checker.
    Abstain(AbstainReason),
}

impl VcVerdict {
    /// Returns `true` when the pass certified the execution valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, VcVerdict::Valid)
    }

    /// Returns `true` when the pass witnessed a violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, VcVerdict::Violation(_))
    }

    /// Returns `true` when the pass abstained.
    pub fn is_abstain(&self) -> bool {
        matches!(self, VcVerdict::Abstain(_))
    }
}

impl fmt::Display for VcVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcVerdict::Valid => write!(f, "valid"),
            VcVerdict::Violation(w) => write!(f, "violation: {w}"),
            VcVerdict::Abstain(r) => write!(f, "abstain: {r}"),
        }
    }
}

/// The vector-clock / frontier checker for one target model.
#[derive(Debug, Clone, Copy)]
pub struct VcChecker {
    model: ModelKind,
}

impl VcChecker {
    /// Creates a checker deciding conformance to `model`.
    pub fn new(model: ModelKind) -> Self {
        VcChecker { model }
    }

    /// The model this checker decides against.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Checks one execution (complete conflict orders required; use
    /// [`infer_coherence`] first for trace-derived executions without `co`).
    ///
    /// Counts the outcome on the `vc.pass` / `vc.fallback` / `vc.abstain`
    /// telemetry counters.
    pub fn check(&self, exec: &CandidateExecution) -> VcVerdict {
        let verdict = self.decide(exec);
        match &verdict {
            VcVerdict::Valid => VC_PASS.incr(),
            VcVerdict::Violation(_) => VC_FALLBACK.incr(),
            VcVerdict::Abstain(_) => VC_ABSTAIN.incr(),
        }
        verdict
    }

    fn decide(&self, exec: &CandidateExecution) -> VcVerdict {
        if let Err(e) = exec.validate() {
            return VcVerdict::Abstain(AbstainReason::Malformed(e.to_string()));
        }
        let fr = exec.fr();

        // sc-per-location and rmw-atomicity hold in every model of the suite,
        // so a breach of either is a violation regardless of target strength.
        let mut sc_per_loc = exec.po_loc();
        sc_per_loc.union_with(&exec.com());
        if let Err(cycle) = frontier_acyclic(exec, &sc_per_loc) {
            return VcVerdict::Violation(VcWitness {
                axiom: "sc-per-location",
                cycle,
            });
        }
        let atomicity = model::rmw_atomicity_violations(exec, &fr);
        if !atomicity.is_empty() {
            let cycle = atomicity.iter().flat_map(|(a, b)| [a, b]).collect();
            return VcVerdict::Violation(VcWitness {
                axiom: "rmw-atomicity",
                cycle,
            });
        }

        // The SC happens-before union.  Under SC the fence order is contained
        // in (transitive) program order, so `po_mem ∪ rf ∪ co ∪ fr` is exactly
        // SC's ghb relation and its acyclicity decides SC both ways.
        let mut sc_hb = model::po_mem(exec);
        sc_hb.union_with(exec.rf());
        sc_hb.union_with(exec.co());
        sc_hb.union_with(&fr);

        match self.model {
            ModelKind::Sc => match frontier_acyclic(exec, &sc_hb) {
                Ok(()) => VcVerdict::Valid,
                Err(cycle) => VcVerdict::Violation(VcWitness {
                    axiom: "ghb",
                    cycle,
                }),
            },
            ModelKind::Tso => {
                // TSO's ghb, ingredient for ingredient: program order minus
                // write→read (the store buffer), full fences and fence-implying
                // RMWs, external reads-from, co and fr.
                let mut ghb = model::po_mem(exec)
                    .filter(|a, b| !(exec.event(a).is_write() && exec.event(b).is_read()));
                ghb.union_with(&model::fence_separated(exec, |k| k == FenceKind::Full));
                ghb.union_with(&exec.rf_external());
                ghb.union_with(exec.co());
                ghb.union_with(&fr);
                match frontier_acyclic(exec, &ghb) {
                    Ok(()) => VcVerdict::Valid,
                    Err(cycle) => VcVerdict::Violation(VcWitness {
                        axiom: "ghb",
                        cycle,
                    }),
                }
            }
            // Models weaker than TSO: SC validity is sufficient (the strength
            // chain is monotone), but an SC cycle proves nothing about them —
            // their fence and dependency cumulativity is out of this pass's
            // scope, so anything else is the axiomatic checker's call.
            weak => match frontier_acyclic(exec, &sc_hb) {
                Ok(()) => VcVerdict::Valid,
                Err(_) => VcVerdict::Abstain(AbstainReason::WeakModel(weak)),
            },
        }
    }
}

/// Frontier propagation: commits events whose predecessors (under `rel`) have
/// all committed, advancing a per-thread vector clock, until either every
/// event committed (`Ok`) or the frontier is stuck (`Err` with a witnessing
/// cycle among the uncommitted events, in forward edge order).
pub fn frontier_acyclic(exec: &CandidateExecution, rel: &Relation) -> Result<(), Vec<EventId>> {
    let n = exec.len();
    let mut indegree = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in rel.iter() {
        let (a, b) = (a.index(), b.index());
        if a >= n || b >= n {
            continue;
        }
        out[a].push(b);
        indegree[b] += 1;
    }
    // The frontier: events every predecessor of which has committed.  Initial
    // writes and unconstrained events seed it; committing an event releases
    // its successors, which is the vector-clock advance — per thread, the
    // committed program-order index only ever grows.
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut committed = 0usize;
    while let Some(i) = frontier.pop() {
        committed += 1;
        for &j in &out[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                frontier.push(j);
            }
        }
    }
    if committed == n {
        return Ok(());
    }
    // The frontier is stuck: every remaining event still has an uncommitted
    // predecessor, so walking predecessors inside the residue must revisit a
    // node within n steps — that revisit closes the witnessing cycle.
    let mut ins: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, succs) in out.iter().enumerate() {
        for &j in succs {
            if indegree[j] > 0 && indegree[i] > 0 {
                ins[j].push(i);
            }
        }
    }
    let start = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
    let mut path = vec![start];
    let mut seen_at = vec![usize::MAX; n];
    seen_at[start] = 0;
    loop {
        let cur = *path.last().unwrap_or(&start);
        let Some(&pred) = ins[cur].first() else {
            // Unreachable for a stuck frontier; bail with the raw residue.
            return Err(path.into_iter().map(|i| EventId(i as u32)).collect());
        };
        if seen_at[pred] != usize::MAX {
            // The walk collects predecessors, so reversing the revisited
            // suffix yields the cycle in forward edge order (the edge from
            // the suffix's first element back to its last closes it).
            let cycle: Vec<EventId> = path[seen_at[pred]..]
                .iter()
                .rev()
                .map(|&i| EventId(i as u32))
                .collect();
            return Err(cycle);
        }
        seen_at[pred] = path.len();
        path.push(pred);
    }
}

/// Result of per-location coherence-order inference over a trace-derived
/// execution (see [`infer_coherence`]).
#[derive(Debug, Clone)]
pub enum CoherenceInference {
    /// Every address's writes are totally ordered by the forced edges; the
    /// returned execution carries the completed coherence order.  (Boxed:
    /// an execution is much larger than the other variants' payloads.)
    Complete(Box<CandidateExecution>),
    /// The forced edges contradict each other: no coherence order satisfies
    /// sc-per-location, so the trace violates every model of the suite.
    Contradiction {
        /// The address whose forced coherence edges form a cycle.
        addr: Address,
        /// The witnessing cycle of write events.
        witness: Vec<EventId>,
    },
    /// The observed final value of this address matches no write of the
    /// trace: the final state is unreachable under any coherence order.
    FinalMismatch {
        /// The address whose final value is unaccounted for.
        addr: Address,
        /// The observed final value.
        value: Value,
    },
    /// Some pair of writes to this address is unordered after saturation; the
    /// trace admits several coherence orders.
    Underdetermined {
        /// The address whose writes the trace leaves partially ordered.
        addr: Address,
    },
}

/// Infers each location's coherence order from observed reads-from, program
/// order and (optionally) the final memory state.
///
/// The rules are exactly the orderings sc-per-location forces for
/// same-address events (writes `w`, reads `r`, `src(r)` the rf-source):
///
/// * the initial write precedes every other write;
/// * `w1 →po w2` forces `w1 →co w2`;
/// * `w →po r` forces `w →co src(r)` (when `src(r) ≠ w`);
/// * `r →po w` forces `src(r) →co w`;
/// * `r1 →po r2` forces `src(r1) →co src(r2)` (when the sources differ);
/// * a final value selects its write as coherence-maximal.
///
/// Any coherence order satisfying sc-per-location extends the transitive
/// closure of these edges, so a total closure is *the* coherence order, a
/// cyclic closure refutes all of them, and an incomplete one is reported as
/// [`Underdetermined`](CoherenceInference::Underdetermined) rather than
/// searched.
pub fn infer_coherence(
    exec: &CandidateExecution,
    finals: &[(Address, Value)],
) -> CoherenceInference {
    let mut co = Relation::new();
    for addr in exec.addresses() {
        let writes: Vec<EventId> = exec.writes_to(addr).map(|e| e.id).collect();
        if writes.len() <= 1 {
            continue;
        }
        let mut forced = Relation::new();
        // Already-known edges (initial-write ordering recorded at lowering).
        for (a, b) in exec.co_observed().iter() {
            if exec.event(a).addr == Some(addr) {
                forced.insert(a, b);
            }
        }
        let src_of = |r: EventId| -> Option<EventId> {
            exec.rf().iter().find(|&(_, rd)| rd == r).map(|(w, _)| w)
        };
        for &a in &writes {
            if exec.event(a).is_initial() {
                for &b in &writes {
                    if a != b {
                        forced.insert(a, b);
                    }
                }
            }
        }
        let same_addr_events: Vec<EventId> = exec
            .events()
            .iter()
            .filter(|e| e.addr == Some(addr) && e.kind.is_memory_access())
            .map(|e| e.id)
            .collect();
        for &a in &same_addr_events {
            for &b in &same_addr_events {
                if a == b || !exec.po().contains(a, b) {
                    continue;
                }
                let ea = exec.event(a);
                let eb = exec.event(b);
                let wa = if ea.is_write() { Some(a) } else { src_of(a) };
                let wb = if eb.is_write() { Some(b) } else { src_of(b) };
                if let (Some(wa), Some(wb)) = (wa, wb) {
                    if wa != wb {
                        forced.insert(wa, wb);
                    }
                }
            }
        }
        if let Some(&(_, value)) = finals.iter().find(|&&(a, _)| a == addr) {
            let last = writes.iter().copied().find(|&w| {
                exec.event(w).value == value
                    && (value != Value::INITIAL || exec.event(w).is_initial())
            });
            let Some(last) = last else {
                return CoherenceInference::FinalMismatch { addr, value };
            };
            for &w in &writes {
                if w != last {
                    forced.insert(w, last);
                }
            }
        }
        let closed = forced.transitive_closure();
        if let Some(witness) = closed.find_cycle() {
            return CoherenceInference::Contradiction { addr, witness };
        }
        for (i, &a) in writes.iter().enumerate() {
            for &b in writes.iter().skip(i + 1) {
                if !closed.contains(a, b) && !closed.contains(b, a) {
                    return CoherenceInference::Underdetermined { addr };
                }
            }
        }
        co.union_with(&closed);
    }
    CoherenceInference::Complete(Box::new(CandidateExecution::from_parts_with_deps(
        exec.events().to_vec(),
        exec.po().clone(),
        exec.rf().clone(),
        co,
        exec.deps().clone(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::checker::Checker;
    use mcversi_mcm::event::{ProcessorId, Value};
    use mcversi_mcm::execution::ExecutionBuilder;

    fn p(n: u32) -> ProcessorId {
        ProcessorId(n)
    }

    /// SB without fences: two threads store then load the other's location,
    /// both loads observing the initial value.
    fn store_buffer_weak() -> CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let (x, y) = (Address(0x100), Address(0x200));
        let w0 = b.write(p(0), x, Value(1));
        let r0 = b.read(p(0), y, Value(0));
        let w1 = b.write(p(1), y, Value(1));
        let r1 = b.read(p(1), x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        b.build()
    }

    /// Message passing with the consumer observing the flag but stale data.
    fn mp_violation() -> CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let (x, y) = (Address(0x100), Address(0x200));
        let wx = b.write(p(0), x, Value(1));
        let wy = b.write(p(0), y, Value(1));
        let ry = b.read(p(1), y, Value(1));
        let rx = b.read(p(1), x, Value(0));
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    #[test]
    fn sb_is_tso_valid_but_sc_invalid() {
        let exec = store_buffer_weak();
        assert!(VcChecker::new(ModelKind::Tso).check(&exec).is_valid());
        let sc = VcChecker::new(ModelKind::Sc).check(&exec);
        assert!(sc.is_violation(), "{sc:?}");
    }

    #[test]
    fn mp_is_a_tso_violation_with_a_real_cycle_witness() {
        let exec = mp_violation();
        let verdict = VcChecker::new(ModelKind::Tso).check(&exec);
        let VcVerdict::Violation(w) = verdict else {
            panic!("expected violation, got {verdict:?}");
        };
        assert_eq!(w.axiom, "ghb");
        assert!(w.cycle.len() >= 2);
        assert!(!format!("{w}").is_empty());
    }

    #[test]
    fn weak_models_accept_sc_valid_and_abstain_on_sc_cycles() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(p(0), Address(0x10), Value(1));
        let r = b.read(p(1), Address(0x10), Value(1));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        let simple = b.build();
        for weak in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
            assert!(VcChecker::new(weak).check(&simple).is_valid());
            let verdict = VcChecker::new(weak).check(&store_buffer_weak());
            assert_eq!(
                verdict,
                VcVerdict::Abstain(AbstainReason::WeakModel(weak)),
                "SB has an SC cycle, so the weak-model pass must abstain"
            );
        }
    }

    #[test]
    fn coherence_cycle_is_a_violation_for_every_model() {
        // CoRR inversion: same thread reads x=2 then x=1 while co orders
        // w1 before w2 — a po-loc ∪ com cycle.
        let mut b = ExecutionBuilder::new();
        let x = Address(0x10);
        let w1 = b.write(p(0), x, Value(1));
        let w2 = b.write(p(0), x, Value(2));
        let ra = b.read(p(1), x, Value(2));
        let rb = b.read(p(1), x, Value(1));
        b.reads_from(w2, ra);
        b.reads_from(w1, rb);
        b.coherence_after_initial(w1);
        b.coherence(w1, w2);
        let exec = b.build();
        for model in ModelKind::ALL {
            let verdict = VcChecker::new(model).check(&exec);
            let VcVerdict::Violation(w) = verdict else {
                panic!("{model}: expected violation, got {verdict:?}");
            };
            assert_eq!(w.axiom, "sc-per-location");
        }
    }

    #[test]
    fn rmw_atomicity_breach_is_reported() {
        let mut b = ExecutionBuilder::new();
        let x = Address(0x10);
        let (rr, rw) = b.rmw(p(0), x, Value(0), Value(7));
        let intruder = b.write(p(1), x, Value(3));
        b.reads_from_initial(rr);
        b.coherence_after_initial(intruder);
        b.coherence(intruder, rw);
        let exec = b.build();
        let verdict = VcChecker::new(ModelKind::Tso).check(&exec);
        let VcVerdict::Violation(w) = verdict else {
            panic!("expected violation, got {verdict:?}");
        };
        assert_eq!(w.axiom, "rmw-atomicity");
    }

    #[test]
    fn malformed_executions_abstain_to_the_axiomatic_checker() {
        let mut b = ExecutionBuilder::new();
        b.read(p(0), Address(0x10), Value(0));
        let exec = b.build();
        let verdict = VcChecker::new(ModelKind::Tso).check(&exec);
        assert!(
            matches!(verdict, VcVerdict::Abstain(AbstainReason::Malformed(_))),
            "{verdict:?}"
        );
    }

    #[test]
    fn frontier_witness_is_a_closed_cycle() {
        let exec = mp_violation();
        let mut rel = model::po_mem(&exec);
        rel.union_with(exec.rf());
        rel.union_with(exec.co());
        rel.union_with(&exec.fr());
        let cycle = frontier_acyclic(&exec, &rel).expect_err("MP has an SC cycle");
        assert!(cycle.len() >= 2);
        for w in cycle.windows(2) {
            assert!(rel.contains(w[0], w[1]), "broken edge {} -> {}", w[0], w[1]);
        }
        let (&first, &last) = (cycle.first().unwrap(), cycle.last().unwrap());
        assert!(rel.contains(last, first), "cycle must close");
    }

    #[test]
    fn vc_verdict_agrees_with_the_axiomatic_checker_on_litmus_shapes() {
        for exec in [store_buffer_weak(), mp_violation()] {
            for model in [ModelKind::Sc, ModelKind::Tso] {
                let vc = VcChecker::new(model).check(&exec);
                let axiomatic = Checker::new(model.instance()).check(&exec);
                assert_eq!(
                    vc.is_valid(),
                    axiomatic.is_valid(),
                    "{model}: vc={vc:?} axiomatic={axiomatic:?}"
                );
                assert!(!vc.is_abstain(), "SC/TSO decisions are exact");
            }
        }
    }

    fn strip_co(exec: &CandidateExecution) -> CandidateExecution {
        // Keep only initial-write ordering, as trace lowering would.
        let co = exec.co_observed().filter(|a, _| exec.event(a).is_initial());
        CandidateExecution::from_parts_with_deps(
            exec.events().to_vec(),
            exec.po().clone(),
            exec.rf().clone(),
            co,
            exec.deps().clone(),
        )
    }

    #[test]
    fn coherence_inference_recovers_the_unique_order() {
        // One thread writes x=1 then x=2; a reader sees 1 then 2.  The final
        // state pins nothing extra — po alone orders the writes.
        let mut b = ExecutionBuilder::new();
        let x = Address(0x10);
        let w1 = b.write(p(0), x, Value(1));
        let w2 = b.write(p(0), x, Value(2));
        let r = b.read(p(1), x, Value(2));
        b.reads_from(w2, r);
        b.coherence_after_initial(w1);
        b.coherence(w1, w2);
        let full = b.build();
        let stripped = strip_co(&full);
        match infer_coherence(&stripped, &[]) {
            CoherenceInference::Complete(exec) => {
                assert!(exec.co().contains(w1, w2));
                assert!(!exec.co().contains(w2, w1));
                assert!(exec.validate().is_ok());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn final_state_orders_otherwise_incomparable_writes() {
        // Two threads each write x once; nothing reads.  Without the final
        // state the order is underdetermined; with it, pinned.
        let mut b = ExecutionBuilder::new();
        let x = Address(0x10);
        let w1 = b.write(p(0), x, Value(1));
        let w2 = b.write(p(1), x, Value(2));
        b.coherence_after_initial(w1);
        b.coherence_after_initial(w2);
        let exec = strip_co(&b.build());
        assert!(matches!(
            infer_coherence(&exec, &[]),
            CoherenceInference::Underdetermined { addr } if addr == x
        ));
        match infer_coherence(&exec, &[(x, Value(2))]) {
            CoherenceInference::Complete(done) => {
                assert!(done.co().contains(w1, w2));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        assert!(matches!(
            infer_coherence(&exec, &[(x, Value(9))]),
            CoherenceInference::FinalMismatch { addr, value } if addr == x && value == Value(9)
        ));
    }

    #[test]
    fn contradictory_observations_are_refuted() {
        // Reader thread sees x=2 then x=1 (CoRR), but po orders w1 before w2:
        // the forced edges w1→w2 (po) and w2→w1 (read order) collide.
        let mut b = ExecutionBuilder::new();
        let x = Address(0x10);
        let w1 = b.write(p(0), x, Value(1));
        let w2 = b.write(p(0), x, Value(2));
        let ra = b.read(p(1), x, Value(2));
        let rb = b.read(p(1), x, Value(1));
        b.reads_from(w2, ra);
        b.reads_from(w1, rb);
        b.coherence_after_initial(w1);
        b.coherence(w1, w2);
        let exec = strip_co(&b.build());
        assert!(matches!(
            infer_coherence(&exec, &[]),
            CoherenceInference::Contradiction { addr, .. } if addr == x
        ));
    }

    #[test]
    fn inference_matches_observed_coherence_on_simulator_style_executions() {
        // When inference completes on a stripped execution, the recovered co
        // must order every pair exactly as the original did.
        let execs = [store_buffer_weak(), mp_violation()];
        for orig in execs {
            match infer_coherence(&strip_co(&orig), &[]) {
                CoherenceInference::Complete(inferred) => {
                    for (a, b) in orig.co().iter() {
                        assert!(inferred.co().contains(a, b), "lost co edge {a} -> {b}");
                    }
                }
                CoherenceInference::Underdetermined { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
