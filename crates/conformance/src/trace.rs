//! Black-box trace ingestion: the versioned `mcversi-trace` wire format.
//!
//! External simulators and RTL testbenches log memory operations as text, one
//! operation per line, Axe-style.  This module owns the hand-rolled parser
//! (the build environment is offline, so no parser generators) and the
//! lowering into a [`CandidateExecution`], after which the trace flows
//! through exactly the same checker stack as simulator-observed executions.
//!
//! # Wire format, version 1
//!
//! ```text
//! mcversi-trace v1
//! # comments and blank lines are ignored
//! model tso                  # optional: sc | tso | armish | powerish | rmo
//! store <tid> <addr> <value> # a store; values are per-address unique, nonzero
//! load  <tid> <addr>         # issues a load; its value arrives in a `resp`
//! resp  <tid> <value>        # completes the thread's oldest outstanding load
//! fence <tid> <kind>         # kind: mfence | sfence | lfence | acq | rel | lwsync
//! final <addr> <value>       # optional: observed final memory state
//! ```
//!
//! Numbers are decimal or `0x`-prefixed hexadecimal.  Program order per
//! thread is line order; `resp` lines may arrive out of order with respect
//! to other threads but complete their own thread's loads in FIFO order.
//! The value `0` always denotes the initial state, so a `resp 0` reads the
//! initial value and store values must be nonzero — the per-address
//! write-unique-value discipline is what makes reads-from attribution exact
//! (paper §4.1's write unique ID scheme applied at the trace boundary).
//!
//! Coherence order is *not* part of the format: black-box traces do not
//! observe it.  [`infer_coherence`](crate::vc::infer_coherence) reconstructs
//! it from the lowered execution and the `final` lines.

use mcversi_mcm::event::{Address, FenceKind, ProcessorId, Value};
use mcversi_mcm::execution::{CandidateExecution, ExecutionBuilder};
use mcversi_mcm::ModelKind;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// The version-1 header every trace file must start with.
pub const TRACE_MAGIC_V1: &str = "mcversi-trace v1";

/// A parse or lowering error, with the 1-based source line that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the trace file (0 for end-of-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl TraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "at end of trace: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// One operation of a parsed trace, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A store of `value` to `addr` by thread `tid`.
    Store {
        /// Issuing thread.
        tid: u32,
        /// Target address.
        addr: Address,
        /// Stored value (nonzero, unique per address).
        value: Value,
    },
    /// A load from `addr` issued by thread `tid` (value pending).
    Load {
        /// Issuing thread.
        tid: u32,
        /// Loaded address.
        addr: Address,
    },
    /// The response completing thread `tid`'s oldest outstanding load.
    Resp {
        /// Thread whose load completes.
        tid: u32,
        /// Observed value (`0` = initial state).
        value: Value,
    },
    /// A fence issued by thread `tid`.
    Fence {
        /// Issuing thread.
        tid: u32,
        /// Fence flavour.
        kind: FenceKind,
    },
}

/// A parsed (but not yet lowered) trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceProgram {
    /// The model the trace declares via a `model` directive, if any.
    pub model: Option<ModelKind>,
    ops: Vec<(usize, TraceOp)>,
    finals: Vec<(Address, Value)>,
}

impl TraceProgram {
    /// The parsed operations with their 1-based source lines, in file order.
    pub fn ops(&self) -> impl Iterator<Item = &(usize, TraceOp)> {
        self.ops.iter()
    }

    /// The observed final memory state (`final` lines), in file order.
    pub fn finals(&self) -> &[(Address, Value)] {
        &self.finals
    }

    /// Number of operations (excluding directives and `final` lines).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the trace carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Lowers the trace into a candidate execution.
    ///
    /// Program order is file order per thread; each `resp` completes its
    /// thread's oldest outstanding load; read values map back to their unique
    /// producing store (or the initial state for value `0`).  The returned
    /// execution carries only the initial-write coherence edges — run
    /// [`infer_coherence`](crate::vc::infer_coherence) with
    /// [`finals`](Self::finals) to complete `co` before checking.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for duplicate or zero store values, responses
    /// without an outstanding load, loads left without a response, or
    /// observed values that no store (to that address) produced.
    pub fn lower(&self) -> Result<LoweredTrace, TraceError> {
        let mut b = ExecutionBuilder::new();
        let mut stores: BTreeMap<(Address, Value), mcversi_mcm::EventId> = BTreeMap::new();
        let mut outstanding: BTreeMap<u32, VecDeque<mcversi_mcm::EventId>> = BTreeMap::new();
        // (read event, observed value, resp line) resolved after all stores
        // are known — a response may precede its producing store in the log.
        let mut resolved: Vec<(mcversi_mcm::EventId, Value, usize)> = Vec::new();

        for &(line, op) in &self.ops {
            match op {
                TraceOp::Store { tid, addr, value } => {
                    if value == Value::INITIAL {
                        return Err(TraceError::new(
                            line,
                            format!(
                                "store of value 0 to {addr}: 0 is reserved for the initial state"
                            ),
                        ));
                    }
                    let w = b.write(ProcessorId(tid), addr, value);
                    if stores.insert((addr, value), w).is_some() {
                        return Err(TraceError::new(
                            line,
                            format!(
                                "duplicate store value {value} to {addr}: values must be \
                                 per-address unique for reads-from attribution"
                            ),
                        ));
                    }
                    b.coherence_after_initial(w);
                }
                TraceOp::Load { tid, addr } => {
                    let r = b.read(ProcessorId(tid), addr, Value::INITIAL);
                    outstanding.entry(tid).or_default().push_back(r);
                }
                TraceOp::Resp { tid, value } => {
                    let Some(r) = outstanding.entry(tid).or_default().pop_front() else {
                        return Err(TraceError::new(
                            line,
                            format!("resp for thread {tid} with no outstanding load"),
                        ));
                    };
                    resolved.push((r, value, line));
                }
                TraceOp::Fence { tid, kind } => {
                    b.fence(ProcessorId(tid), kind);
                }
            }
        }
        for (tid, pending) in &outstanding {
            if !pending.is_empty() {
                return Err(TraceError::new(
                    0,
                    format!(
                        "thread {tid} has {} load(s) without a response",
                        pending.len()
                    ),
                ));
            }
        }
        for (r, value, line) in resolved {
            let addr = b.events()[r.index()].addr.unwrap_or(Address(0));
            if value == Value::INITIAL {
                b.reads_from_initial(r);
            } else if let Some(&w) = stores.get(&(addr, value)) {
                b.set_event_value(r, value);
                b.reads_from(w, r);
            } else {
                return Err(TraceError::new(
                    line,
                    format!("load of {addr} observed value {value}, which no store produced"),
                ));
            }
        }
        Ok(LoweredTrace {
            exec: b.build(),
            finals: self.finals.clone(),
        })
    }
}

/// A lowered trace: the candidate execution (coherence order incomplete —
/// initial-write edges only) plus the observed final state.
#[derive(Debug, Clone)]
pub struct LoweredTrace {
    /// The lowered execution.
    pub exec: CandidateExecution,
    /// The `final` lines, for coherence inference.
    pub finals: Vec<(Address, Value)>,
}

fn parse_number(token: &str, what: &str, line: usize) -> Result<u64, TraceError> {
    let parsed = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse::<u64>()
    };
    parsed.map_err(|_| TraceError::new(line, format!("invalid {what} '{token}'")))
}

fn parse_tid(token: &str, line: usize) -> Result<u32, TraceError> {
    let raw = parse_number(token, "thread id", line)?;
    u32::try_from(raw).map_err(|_| TraceError::new(line, format!("thread id '{token}' too large")))
}

fn parse_fence_kind(token: &str, line: usize) -> Result<FenceKind, TraceError> {
    FenceKind::ALL
        .into_iter()
        .find(|k| k.to_string() == token)
        .ok_or_else(|| {
            TraceError::new(
                line,
                format!(
                    "unknown fence kind '{token}' (expected one of mfence, sfence, lfence, \
                     acq, rel, lwsync)"
                ),
            )
        })
}

/// Parses a version-1 trace file.
///
/// # Errors
///
/// Returns a [`TraceError`] with the offending line for a missing or
/// unsupported header, unknown keywords, arity mismatches, malformed numbers
/// or duplicate `model` directives.
pub fn parse(text: &str) -> Result<TraceProgram, TraceError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let header = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    match header {
        Some((_, l)) if l == TRACE_MAGIC_V1 => {}
        Some((n, l)) => {
            return Err(TraceError::new(
                n,
                format!("unsupported trace header '{l}' (expected '{TRACE_MAGIC_V1}')"),
            ));
        }
        None => {
            return Err(TraceError::new(
                0,
                format!("empty trace (expected '{TRACE_MAGIC_V1}')"),
            ))
        }
    }
    let mut program = TraceProgram::default();
    for (n, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip trailing comments.
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().unwrap_or("");
        let args: Vec<&str> = tokens.collect();
        let arity = |want: usize| -> Result<(), TraceError> {
            if args.len() == want {
                Ok(())
            } else {
                Err(TraceError::new(
                    n,
                    format!("'{keyword}' takes {want} argument(s), got {}", args.len()),
                ))
            }
        };
        match keyword {
            "model" => {
                arity(1)?;
                let model = ModelKind::parse(args[0])
                    .ok_or_else(|| TraceError::new(n, format!("unknown model '{}'", args[0])))?;
                if program.model.replace(model).is_some() {
                    return Err(TraceError::new(n, "duplicate 'model' directive"));
                }
            }
            "store" => {
                arity(3)?;
                program.ops.push((
                    n,
                    TraceOp::Store {
                        tid: parse_tid(args[0], n)?,
                        addr: Address(parse_number(args[1], "address", n)?),
                        value: Value(parse_number(args[2], "value", n)?),
                    },
                ));
            }
            "load" => {
                arity(2)?;
                program.ops.push((
                    n,
                    TraceOp::Load {
                        tid: parse_tid(args[0], n)?,
                        addr: Address(parse_number(args[1], "address", n)?),
                    },
                ));
            }
            "resp" => {
                arity(2)?;
                program.ops.push((
                    n,
                    TraceOp::Resp {
                        tid: parse_tid(args[0], n)?,
                        value: Value(parse_number(args[1], "value", n)?),
                    },
                ));
            }
            "fence" => {
                arity(2)?;
                program.ops.push((
                    n,
                    TraceOp::Fence {
                        tid: parse_tid(args[0], n)?,
                        kind: parse_fence_kind(args[1], n)?,
                    },
                ));
            }
            "final" => {
                arity(2)?;
                program.finals.push((
                    Address(parse_number(args[0], "address", n)?),
                    Value(parse_number(args[1], "value", n)?),
                ));
            }
            other => {
                return Err(TraceError::new(
                    n,
                    format!(
                        "unknown keyword '{other}' (expected model, store, load, resp, \
                         fence or final)"
                    ),
                ));
            }
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP_OK: &str = "\
mcversi-trace v1
# message passing, fully ordered: data then flag, reader sees both
model tso
store 0 0x100 1
store 0 0x200 1
load 1 0x200
resp 1 1
load 1 0x100
resp 1 1
final 0x100 1
final 0x200 1
";

    #[test]
    fn parses_and_lowers_the_mp_trace() {
        let program = parse(MP_OK).expect("parses");
        assert_eq!(program.model, Some(ModelKind::Tso));
        assert_eq!(program.len(), 6);
        assert!(!program.is_empty());
        assert_eq!(program.finals().len(), 2);
        assert_eq!(program.ops().count(), 6);
        let lowered = program.lower().expect("lowers");
        assert!(lowered.exec.validate().is_ok());
        // 2 stores + 2 loads + 2 initial writes.
        assert_eq!(lowered.exec.len(), 6);
        assert_eq!(lowered.exec.rf().len(), 2);
    }

    #[test]
    fn header_is_mandatory_and_versioned() {
        assert!(parse("").unwrap_err().message.contains("empty trace"));
        let err = parse("mcversi-trace v99\nstore 0 0x10 1\n").unwrap_err();
        assert!(err.message.contains("unsupported trace header"), "{err}");
        assert_eq!(err.line, 1);
        // Comments and blank lines may precede the header.
        assert!(parse("# preamble\n\nmcversi-trace v1\n").is_ok());
    }

    #[test]
    fn resp_completes_loads_in_fifo_order() {
        let text = "\
mcversi-trace v1
store 0 0x10 1
store 0 0x20 2
load 1 0x10
load 1 0x20
resp 1 1
resp 1 2
";
        let lowered = parse(text).unwrap().lower().unwrap();
        assert!(lowered.exec.validate().is_ok());
        // The first resp (value 1) matched the first load (of 0x10): if FIFO
        // pairing were broken, the value would mismatch the address and rf
        // attribution would fail.
        assert_eq!(lowered.exec.rf().len(), 2);
    }

    #[test]
    fn resp_may_precede_its_producing_store() {
        // Cross-thread log order is temporal, not causal: the reader's resp
        // line can be logged before the writer's store line.
        let text = "\
mcversi-trace v1
load 1 0x10
resp 1 7
store 0 0x10 7
";
        let lowered = parse(text).unwrap().lower().unwrap();
        assert!(lowered.exec.validate().is_ok());
        assert_eq!(lowered.exec.rf().len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: [(&str, &str); 7] = [
            ("mcversi-trace v1\nteleport 0 0x10\n", "unknown keyword"),
            ("mcversi-trace v1\nstore 0 0x10\n", "takes 3 argument(s)"),
            ("mcversi-trace v1\nstore 0 zzz 1\n", "invalid address"),
            (
                "mcversi-trace v1\nfence 0 superfence\n",
                "unknown fence kind",
            ),
            (
                "mcversi-trace v1\nmodel tso\nmodel sc\n",
                "duplicate 'model'",
            ),
            ("mcversi-trace v1\nmodel x86\n", "unknown model"),
            ("mcversi-trace v1\nstore 99999999999 0x10 1\n", "too large"),
        ];
        for (text, expect) in cases {
            let err = parse(text).unwrap_err();
            assert!(err.message.contains(expect), "{text:?}: {err}");
            assert!(err.line >= 2, "{err}");
            assert!(!format!("{err}").is_empty());
        }
    }

    #[test]
    fn lowering_errors_are_reported() {
        let zero = "mcversi-trace v1\nstore 0 0x10 0\n";
        let err = parse(zero).unwrap().lower().unwrap_err();
        assert!(
            err.message.contains("reserved for the initial state"),
            "{err}"
        );

        let dup = "mcversi-trace v1\nstore 0 0x10 5\nstore 1 0x10 5\n";
        let err = parse(dup).unwrap().lower().unwrap_err();
        assert!(err.message.contains("duplicate store value"), "{err}");
        assert_eq!(err.line, 3);

        let orphan_resp = "mcversi-trace v1\nresp 0 1\n";
        let err = parse(orphan_resp).unwrap().lower().unwrap_err();
        assert!(err.message.contains("no outstanding load"), "{err}");

        let unanswered = "mcversi-trace v1\nload 0 0x10\n";
        let err = parse(unanswered).unwrap().lower().unwrap_err();
        assert!(err.message.contains("without a response"), "{err}");
        assert_eq!(err.line, 0);
        assert!(format!("{err}").contains("at end of trace"));

        let unwritten = "mcversi-trace v1\nload 0 0x10\nresp 0 42\n";
        let err = parse(unwritten).unwrap().lower().unwrap_err();
        assert!(err.message.contains("no store produced"), "{err}");
    }

    #[test]
    fn hex_and_decimal_numbers_are_interchangeable() {
        let text = "\
mcversi-trace v1
store 0 256 1
load 1 0x100
resp 1 0x1
";
        let lowered = parse(text).unwrap().lower().unwrap();
        assert_eq!(lowered.exec.rf().len(), 1, "0x100 == 256 must unify");
    }

    #[test]
    fn trailing_comments_are_stripped() {
        let text = "\
mcversi-trace v1
store 0 0x10 1   # the producer
fence 0 mfence   # drain
";
        let program = parse(text).unwrap();
        assert_eq!(program.len(), 2);
    }
}
