//! Integration tests of the distributed fabric: coordinator vs. in-process
//! differentials, fault-injected worker loss, and checkpoint/resume.
//!
//! These spawn real `mcversi-work` child processes (the binary Cargo builds
//! alongside this test), so they cover the full wire path: shard JSON on
//! stdin, JSONL events on stdout, journal on disk.

use mcversi_core::sink::NullSink;
use mcversi_core::{CampaignResult, ScenarioSpec};
use mcversi_fabric::{
    merge_results, run_grid, shard_cells, FabricOptions, GridShard, JournalReplay, WorkerFault,
};
use mcversi_mcm::ModelKind;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Duration;

fn worker_program() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_mcversi-work"))
}

/// A campaign cell small enough that a whole grid of them runs in well under
/// a second, yet large enough to stream several events per sample.
fn tiny_cell(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::small();
    spec.base_seed = seed;
    spec.samples = 2;
    spec.test_size = 16;
    spec.iterations = 1;
    spec.max_test_runs = 2;
    spec
}

/// A small grid with distinct cell identities (distinct seeds and models).
fn tiny_grid() -> Vec<ScenarioSpec> {
    let models = [ModelKind::Tso, ModelKind::Sc, ModelKind::Armish];
    (0..3)
        .map(|i| {
            let mut cell = tiny_cell(100 * (i as u64 + 1));
            cell.model = models[i];
            cell
        })
        .collect()
}

/// Every deterministic field of a result — everything except wall-clock time
/// (and derived metrics snapshots, which embed wall time).
fn fingerprint(
    r: &CampaignResult,
) -> (
    u64,
    bool,
    Option<String>,
    usize,
    Option<usize>,
    u64,
    u64,
    u64,
) {
    (
        r.seed,
        r.found,
        r.detail.clone(),
        r.test_runs,
        r.found_at_run,
        r.simulated_cycles,
        r.max_total_coverage.to_bits(),
        r.final_mean_ndt.to_bits(),
    )
}

type GridFingerprint = Vec<(
    u64,
    Vec<(
        u64,
        bool,
        Option<String>,
        usize,
        Option<usize>,
        u64,
        u64,
        u64,
    )>,
)>;

fn grid_fingerprint(cells: &[(ScenarioSpec, Vec<CampaignResult>)]) -> GridFingerprint {
    cells
        .iter()
        .map(|(cell, results)| (cell.cell_id(), results.iter().map(fingerprint).collect()))
        .collect()
}

/// The in-process ground truth: each cell run straight through
/// `run_samples_streamed`, no processes, no journal.
fn in_process_baseline(cells: &[ScenarioSpec]) -> GridFingerprint {
    cells
        .iter()
        .map(|cell| {
            let results = cell.run(&mut NullSink);
            (cell.cell_id(), results.iter().map(fingerprint).collect())
        })
        .collect()
}

fn temp_journal(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("mcversi-fabric-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path.to_str().unwrap().to_owned()
}

#[test]
fn coordinator_matches_the_in_process_baseline() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);

    let mut options = FabricOptions::new(worker_program());
    options.workers = 2;
    let report = run_grid(&cells, &options, &mut NullSink).unwrap();

    assert_eq!(grid_fingerprint(&report.cells), baseline);
    assert!(!report.resumed);
    assert!(report.stats.dispatched >= 1);
    assert_eq!(report.stats.redispatched, 0);
    assert_eq!(report.stats.resume_skipped, 0);
}

#[test]
fn killed_workers_are_redispatched_to_completion() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);
    let journal = temp_journal("kill-redispatch");

    let mut options = FabricOptions::new(worker_program());
    options.workers = 2;
    options.journal = Some(journal.clone());
    options.fault = Some(WorkerFault::KillAfter { events: 3 });
    options.max_redispatch = 3;
    let report = run_grid(&cells, &options, &mut NullSink).unwrap();

    assert_eq!(grid_fingerprint(&report.cells), baseline);
    assert!(
        report.stats.redispatched >= 1,
        "the injected kill must cost at least one re-dispatch"
    );

    // The journal survived the worker loss without duplicate records.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_no_duplicate_checkpoints(&text);
}

#[test]
fn hung_workers_are_detected_by_heartbeat_and_redispatched() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);

    let mut options = FabricOptions::new(worker_program());
    options.workers = 2;
    options.fault = Some(WorkerFault::HangAfter { events: 2 });
    options.heartbeat_timeout = Duration::from_millis(500);
    options.max_redispatch = 3;
    let report = run_grid(&cells, &options, &mut NullSink).unwrap();

    assert_eq!(grid_fingerprint(&report.cells), baseline);
    assert!(
        report.stats.redispatched >= 1,
        "the hung worker must be presumed dead and its shard re-dispatched"
    );
}

#[test]
fn torn_worker_output_never_reaches_the_journal() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);
    let journal = temp_journal("corrupt-tail");

    let mut options = FabricOptions::new(worker_program());
    options.workers = 2;
    options.journal = Some(journal.clone());
    options.fault = Some(WorkerFault::CorruptTail { events: 4 });
    options.max_redispatch = 3;
    let report = run_grid(&cells, &options, &mut NullSink).unwrap();

    assert_eq!(grid_fingerprint(&report.cells), baseline);

    // Every journal line parses: the torn line the worker wrote before dying
    // was dropped at the coordinator, not forwarded.
    let text = std::fs::read_to_string(&journal).unwrap();
    let replay = JournalReplay::replay(&text).unwrap();
    assert!(!replay.truncated_tail, "no torn line may be journaled");
    assert_no_duplicate_checkpoints(&text);
}

/// The headline acceptance criterion: a campaign killed mid-run (worker loss
/// with no re-dispatch budget, as after a coordinator crash) and resumed from
/// its journal finishes with a final result fingerprint identical to an
/// uninterrupted run — across three distinct kill points.
#[test]
fn killed_campaigns_resume_to_the_uninterrupted_fingerprint() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);

    for kill_after in [2u64, 7, 15] {
        let journal = temp_journal(&format!("kill-point-{kill_after}"));

        // Phase 1: the campaign dies mid-run.  max_redispatch = 0 makes the
        // injected worker loss fatal, like a coordinator crash.
        let mut options = FabricOptions::new(worker_program());
        options.workers = 2;
        options.journal = Some(journal.clone());
        options.fault = Some(WorkerFault::KillAfter { events: kill_after });
        options.max_redispatch = 0;
        let err = run_grid(&cells, &options, &mut NullSink)
            .expect_err("a kill with no re-dispatch budget must fail the campaign");
        assert!(err.0.contains("resume from the journal"), "{err}");

        // Phase 2: resume from the journal, no fault this time.
        options.fault = None;
        options.max_redispatch = 2;
        let report = run_grid(&cells, &options, &mut NullSink).unwrap();
        assert!(
            report.resumed,
            "kill point {kill_after}: journal must resume"
        );
        assert_eq!(
            grid_fingerprint(&report.cells),
            baseline,
            "kill point {kill_after}: resumed fingerprint diverges"
        );

        let text = std::fs::read_to_string(&journal).unwrap();
        assert_no_duplicate_checkpoints(&text);
        assert!(
            text.lines().any(|line| line.contains("\"Resume\"")),
            "kill point {kill_after}: the resume must be journaled"
        );
    }
}

/// Resume is prefix-insensitive: *every* line-prefix of a golden journal —
/// from the empty file to the complete journal — resumes to the identical
/// final fingerprint.
#[test]
fn every_journal_prefix_resumes_to_the_identical_fingerprint() {
    let cells = tiny_grid();
    let baseline = in_process_baseline(&cells);

    // Produce the golden journal with an uninterrupted coordinated run.
    let golden_path = temp_journal("golden");
    let mut options = FabricOptions::new(worker_program());
    options.workers = 2;
    options.journal = Some(golden_path.clone());
    let golden = run_grid(&cells, &options, &mut NullSink).unwrap();
    assert_eq!(grid_fingerprint(&golden.cells), baseline);
    let golden_text = std::fs::read_to_string(&golden_path).unwrap();
    let lines: Vec<&str> = golden_text.lines().collect();
    assert!(lines.len() >= 8, "golden journal is implausibly short");

    for prefix_len in 0..=lines.len() {
        let path = temp_journal(&format!("prefix-{prefix_len}"));
        let mut prefix = lines[..prefix_len].join("\n");
        if prefix_len > 0 {
            prefix.push('\n');
        }
        std::fs::write(&path, prefix).unwrap();

        let mut options = FabricOptions::new(worker_program());
        options.workers = 2;
        options.journal = Some(path.clone());
        let report = run_grid(&cells, &options, &mut NullSink).unwrap();
        assert_eq!(
            grid_fingerprint(&report.cells),
            baseline,
            "prefix of {prefix_len}/{} lines diverges",
            lines.len()
        );
        assert_eq!(
            report.resumed,
            prefix_len > 0,
            "prefix of {prefix_len} lines"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_no_duplicate_checkpoints(&text);
    }
}

/// No `(cell, seed)` sample checkpoint and no `CellDone` cell may appear
/// twice in a journal, whatever faults and resumes produced it.
fn assert_no_duplicate_checkpoints(journal_text: &str) {
    let mut samples = BTreeSet::new();
    let mut done = BTreeSet::new();
    for line in journal_text.lines().filter(|l| !l.trim().is_empty()) {
        let event: mcversi_core::sink::CampaignEvent = serde_json::from_str(line).unwrap();
        match event {
            mcversi_core::sink::CampaignEvent::SampleResult { cell, result } => {
                assert!(
                    samples.insert((cell, result.seed)),
                    "duplicate sample checkpoint for cell {cell:#018x} seed {}",
                    result.seed
                );
            }
            mcversi_core::sink::CampaignEvent::CellDone { cell, .. } => {
                assert!(
                    done.insert(cell),
                    "duplicate CellDone for cell {cell:#018x}"
                );
            }
            _ => {}
        }
    }
}

// ---- shard → merge round trip (pure data; no processes) ----

/// An arbitrary grid: `n` cells with distinct seeds, rotating models and
/// sample counts.
fn arbitrary_grid(seed: u64, n: usize) -> Vec<ScenarioSpec> {
    (0..n)
        .map(|i| {
            let mut cell = ScenarioSpec::small();
            cell.base_seed = seed * 10_000 + i as u64 * 100;
            cell.samples = 1 + (i % 3);
            cell.model = ModelKind::ALL[i % ModelKind::ALL.len()];
            cell
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharding loses no cell, invents none, and `merge_results` restores
    /// exactly the unsharded grid order — for arbitrary grids and shard
    /// counts.
    #[test]
    fn shard_then_merge_is_the_identity(seed in 0u64..200, n in 1usize..12, shards in 1usize..9) {
        let cells = arbitrary_grid(seed, n);
        let sharded = shard_cells(&cells, shards).unwrap();
        prop_assert!(sharded.len() <= shards.max(1));
        prop_assert!(sharded.iter().all(|s| !s.cells.is_empty()));

        // Union of shard members == the input grid (as id sets).
        let mut input_ids: Vec<u64> = cells.iter().map(ScenarioSpec::cell_id).collect();
        input_ids.sort_unstable();
        let mut shard_ids: Vec<u64> = sharded.iter().flat_map(|s| s.cell_ids()).collect();
        shard_ids.sort_unstable();
        prop_assert_eq!(&input_ids, &shard_ids);

        // Membership is content-derived: re-sharding a shuffled grid gives
        // the same id → shard-id assignment.
        let mut reversed = cells.clone();
        reversed.reverse();
        let resharded = shard_cells(&reversed, shards).unwrap();
        let assignment = |shards: &[GridShard]| -> BTreeMap<u64, u64> {
            shards
                .iter()
                .flat_map(|s| s.cell_ids().into_iter().map(move |c| (c, s.id)))
                .collect()
        };
        prop_assert_eq!(assignment(&sharded), assignment(&resharded));

        // Synthesize per-cell results (one per sample, keyed by seed) and
        // merge: the output must pair every input cell, in input order, with
        // its results in seed order.
        let mut per_cell: BTreeMap<u64, Vec<CampaignResult>> = BTreeMap::new();
        for shard in &sharded {
            for cell in &shard.cells {
                let results: Vec<CampaignResult> = (0..cell.samples as u64)
                    .map(|i| synthetic_result(cell, cell.base_seed + i))
                    .collect();
                per_cell.insert(cell.cell_id(), results);
            }
        }
        let merged = merge_results(&cells, &per_cell).unwrap();
        prop_assert_eq!(merged.len(), cells.len());
        for ((cell, results), original) in merged.iter().zip(&cells) {
            prop_assert_eq!(cell, original);
            prop_assert_eq!(results.len(), original.samples);
            for (i, result) in results.iter().enumerate() {
                prop_assert_eq!(result.seed, original.base_seed + i as u64);
            }
        }

        // A missing cell is an error, not silent truncation.
        per_cell.remove(&cells[0].cell_id());
        prop_assert!(merge_results(&cells, &per_cell).is_err());
    }
}

fn synthetic_result(cell: &ScenarioSpec, seed: u64) -> CampaignResult {
    CampaignResult {
        generator: cell.generator,
        bug: cell.bug,
        model: cell.model,
        core: cell.core_strength,
        seed,
        found: false,
        detail: None,
        test_runs: 1,
        found_at_run: None,
        simulated_cycles: 1,
        wall_time: Duration::from_millis(1),
        max_total_coverage: 0.0,
        final_mean_ndt: 0.0,
        pruned: 0,
        metrics: None,
        dedup: None,
    }
}
