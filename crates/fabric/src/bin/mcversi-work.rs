//! `mcversi-work`: runs one [`GridShard`] and streams JSONL events on stdout.
//!
//! The worker half of the distributed fabric (see `mcversi_fabric`): the
//! coordinator pipes a shard's JSON to stdin (or names a file) and tails
//! stdout for the cell-attributed campaign-event stream — `Schema` header,
//! then per cell `CellStart`, the sample events (`SampleDone` rewritten to
//! `SampleResult`), and `CellDone`.
//!
//! ```text
//! mcversi-work <shard.json | ->
//! ```
//!
//! A shard may carry a [`WorkerFault`] for deterministic failure testing;
//! fault event counts are in emitted events, excluding the schema header.
//!
//! Exit status: `0` on success, `1` on a shard error, `2` on usage errors,
//! `3` when an injected fault terminated the worker.

use mcversi_core::sink::{CampaignEvent, CampaignSink, JsonlSink};
use mcversi_fabric::{run_shard, GridShard, WorkerFault};
use std::io::{Read as _, Write as _};
use std::process::ExitCode;

/// Wraps the stdout JSONL stream with the shard's injected fault, if any:
/// after the configured number of emitted events the worker kills itself,
/// hangs silently, or writes a torn line and dies.
struct FaultSink {
    inner: JsonlSink<std::io::Stdout>,
    fault: Option<WorkerFault>,
    emitted: u64,
}

impl CampaignSink for FaultSink {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.inner.on_event(event);
        self.emitted += 1;
        match self.fault {
            Some(WorkerFault::KillAfter { events }) if self.emitted >= events => {
                std::process::exit(3);
            }
            Some(WorkerFault::HangAfter { events }) if self.emitted >= events => {
                // Go silent without exiting: the heartbeat-timeout path.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Some(WorkerFault::CorruptTail { events }) if self.emitted >= events => {
                // A torn write: half a JSON object, no trailing newline.
                let mut out = std::io::stdout();
                let _ = out.write_all(b"{\"SampleResult\":{\"cell\":0,\"resu");
                let _ = out.flush();
                std::process::exit(3);
            }
            _ => {}
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: mcversi-work <shard.json | ->");
        return ExitCode::from(2);
    };
    let json = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("mcversi-work: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("mcversi-work: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let shard = match GridShard::from_json(&json) {
        Ok(shard) => shard,
        Err(e) => {
            eprintln!("mcversi-work: {e}");
            return ExitCode::from(2);
        }
    };
    let mut sink = FaultSink {
        inner: JsonlSink::new(std::io::stdout()),
        fault: shard.fault,
        emitted: 0,
    };
    match run_shard(&shard, &mut sink) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcversi-work: {e}");
            ExitCode::from(1)
        }
    }
}
