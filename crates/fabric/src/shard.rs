//! Grid sharding: stable-identity [`GridShard`]s and the deterministic merge.
//!
//! A shard is a serialized sub-grid: a subset of a sweep's cells plus the
//! resume bookkeeping a worker needs (per-cell sample indices to *skip*).
//! Identity is content-derived end to end — a cell's id is
//! [`mcversi_core::ScenarioSpec::cell_id`] (a hash of its canonical JSON) and
//! a shard's id folds its members' sorted cell ids — so re-expanding a grid
//! in a different order, filtering it, or resuming from a journal never
//! changes which shard a cell belongs to or how its results are keyed.

use mcversi_core::{CampaignResult, ScenarioSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An error sharding a grid, merging results, or running the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricError(pub String);

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FabricError {}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError(format!("i/o error: {e}"))
    }
}

/// A deterministic fault injected into a worker process — the test harness
/// for worker-loss and truncated-journal recovery.  Counts are in *emitted
/// events* (journal lines), so a fault fires at the same point of the stream
/// on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFault {
    /// Exit (status 3) immediately after emitting the `events`-th event.
    KillAfter {
        /// 1-based event count after which the worker dies.
        events: u64,
    },
    /// Stop emitting and sleep forever after the `events`-th event — the
    /// heartbeat-timeout path.
    HangAfter {
        /// 1-based event count after which the worker goes silent.
        events: u64,
    },
    /// Write a truncated garbage line after the `events`-th event, then exit
    /// (status 3) — the torn-write path of journal recovery.
    CorruptTail {
        /// 1-based event count after which the torn line is written.
        events: u64,
    },
}

impl WorkerFault {
    /// Parses a fault spec: `kill-after:<n>`, `hang-after:<n>` or
    /// `corrupt-tail:<n>`.
    pub fn parse(raw: &str) -> Option<WorkerFault> {
        let (kind, count) = raw.trim().split_once(':')?;
        let events: u64 = count.trim().parse().ok()?;
        match kind.trim().to_ascii_lowercase().as_str() {
            "kill-after" => Some(WorkerFault::KillAfter { events }),
            "hang-after" | "hang" => Some(WorkerFault::HangAfter { events }),
            "corrupt-tail" => Some(WorkerFault::CorruptTail { events }),
            _ => None,
        }
    }

    /// Renders the fault in the [`WorkerFault::parse`] syntax.
    pub fn spec(&self) -> String {
        match self {
            WorkerFault::KillAfter { events } => format!("kill-after:{events}"),
            WorkerFault::HangAfter { events } => format!("hang-after:{events}"),
            WorkerFault::CorruptTail { events } => format!("corrupt-tail:{events}"),
        }
    }
}

/// A serialized sub-grid: the unit of dispatch between the coordinator and a
/// `mcversi-work` process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridShard {
    /// Content-derived shard identity (see [`shard_cells`]).
    pub id: u64,
    /// The member cells, in original grid order.
    pub cells: Vec<ScenarioSpec>,
    /// Per-cell sample indices to *skip* (parallel to `cells`): samples whose
    /// results a resume journal already holds.  All-empty on a fresh run.
    pub skip: Vec<Vec<usize>>,
    /// Fault injected into the worker running this shard (tests/CI only).
    pub fault: Option<WorkerFault>,
}

impl GridShard {
    /// Renders the shard as JSON (the `mcversi-work` wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard serialization is infallible")
    }

    /// Parses a shard from JSON.
    pub fn from_json(json: &str) -> Result<Self, FabricError> {
        serde_json::from_str(json).map_err(|e| FabricError(format!("invalid grid shard: {e}")))
    }

    /// The member cell ids, in member order.
    pub fn cell_ids(&self) -> Vec<u64> {
        self.cells.iter().map(ScenarioSpec::cell_id).collect()
    }
}

/// FNV-1a (64-bit) over a byte stream; the same function
/// `ScenarioSpec::cell_id` uses over canonical JSON.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A shard's identity: FNV-1a over its members' *sorted* cell ids, so the id
/// depends on which cells the shard holds and on nothing else.
pub fn shard_id(cell_ids: &[u64]) -> u64 {
    let mut sorted = cell_ids.to_vec();
    sorted.sort_unstable();
    fnv1a(sorted.iter().flat_map(|id| id.to_le_bytes()))
}

/// Splits `cells` into at most `shards` sub-grids.
///
/// Membership is `cell_id % shards` — a pure function of cell content — so a
/// cell lands in the same shard regardless of enumeration order or of which
/// other cells the sweep happens to include in its bucket.  Buckets that end
/// up empty are dropped (the returned vector can be shorter than `shards`).
///
/// # Errors
///
/// Fails when two cells hash to the same id (two *identical* specs in one
/// grid): their results would be indistinguishable in the journal.
pub fn shard_cells(cells: &[ScenarioSpec], shards: usize) -> Result<Vec<GridShard>, FabricError> {
    let shards = shards.max(1);
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for (idx, cell) in cells.iter().enumerate() {
        if let Some(first) = seen.insert(cell.cell_id(), idx) {
            return Err(FabricError(format!(
                "duplicate cell identity {:#018x}: cells #{first} and #{idx} are identical \
                 ({}); give them distinct labels or seeds",
                cell.cell_id(),
                cell.display_label(),
            )));
        }
    }
    let mut buckets: BTreeMap<usize, Vec<ScenarioSpec>> = BTreeMap::new();
    for cell in cells {
        let bucket = (cell.cell_id() % shards as u64) as usize;
        buckets.entry(bucket).or_default().push(cell.clone());
    }
    Ok(buckets
        .into_values()
        .map(|cells| {
            let ids: Vec<u64> = cells.iter().map(ScenarioSpec::cell_id).collect();
            let skip = vec![Vec::new(); cells.len()];
            GridShard {
                id: shard_id(&ids),
                cells,
                skip,
                fault: None,
            }
        })
        .collect())
}

/// Reassembles per-cell results into the original grid order.
///
/// `per_cell` keys results by cell id (as the journal and the coordinator
/// accumulate them); the output pairs every cell of `cells` with its results,
/// in `cells` order — the deterministic inverse of [`shard_cells`].
///
/// # Errors
///
/// Fails when a cell has no results (the campaign did not finish).
pub fn merge_results(
    cells: &[ScenarioSpec],
    per_cell: &BTreeMap<u64, Vec<CampaignResult>>,
) -> Result<Vec<(ScenarioSpec, Vec<CampaignResult>)>, FabricError> {
    cells
        .iter()
        .map(|cell| {
            let id = cell.cell_id();
            match per_cell.get(&id) {
                Some(results) => Ok((cell.clone(), results.clone())),
                None => Err(FabricError(format!(
                    "no results for cell {:#018x} ({})",
                    id,
                    cell.display_label()
                ))),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::small();
        spec.base_seed = seed;
        spec
    }

    #[test]
    fn cell_ids_are_stable_and_content_derived() {
        let a = cell(1);
        let b = cell(2);
        assert_ne!(a.cell_id(), b.cell_id());
        assert_eq!(a.cell_id(), cell(1).cell_id());
        // Identity survives a JSON round trip (canonical rendering).
        let back = ScenarioSpec::from_json(&a.to_json()).unwrap();
        assert_eq!(a.cell_id(), back.cell_id());
    }

    #[test]
    fn shard_membership_ignores_enumeration_order() {
        let cells: Vec<ScenarioSpec> = (0..10).map(cell).collect();
        let mut reversed = cells.clone();
        reversed.reverse();
        for shards in [1, 2, 3, 7, 16] {
            let forward = shard_cells(&cells, shards).unwrap();
            let backward = shard_cells(&reversed, shards).unwrap();
            let mut forward_ids: Vec<u64> = forward.iter().map(|s| s.id).collect();
            let mut backward_ids: Vec<u64> = backward.iter().map(|s| s.id).collect();
            forward_ids.sort_unstable();
            backward_ids.sort_unstable();
            assert_eq!(forward_ids, backward_ids, "{shards} shard(s)");
            // Same membership per shard id, cell order inside a shard aside.
            for shard in &forward {
                let twin = backward.iter().find(|s| s.id == shard.id).unwrap();
                let mut ours = shard.cell_ids();
                let mut theirs = twin.cell_ids();
                ours.sort_unstable();
                theirs.sort_unstable();
                assert_eq!(ours, theirs);
            }
        }
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let cells = vec![cell(1), cell(1)];
        let err = shard_cells(&cells, 2).unwrap_err();
        assert!(err.0.contains("duplicate cell identity"), "{err}");
    }

    #[test]
    fn shards_round_trip_through_json() {
        let mut shards = shard_cells(&(0..4).map(cell).collect::<Vec<_>>(), 2).unwrap();
        shards[0].fault = Some(WorkerFault::KillAfter { events: 7 });
        shards[0].skip[0] = vec![1, 3];
        for shard in &shards {
            let back = GridShard::from_json(&shard.to_json()).unwrap();
            assert_eq!(*shard, back);
        }
    }

    #[test]
    fn fault_specs_round_trip() {
        for spec in ["kill-after:5", "hang-after:9", "corrupt-tail:3"] {
            let fault = WorkerFault::parse(spec).unwrap();
            assert_eq!(fault.spec(), spec);
        }
        assert_eq!(
            WorkerFault::parse("hang:4"),
            Some(WorkerFault::HangAfter { events: 4 })
        );
        assert_eq!(WorkerFault::parse("explode:1"), None);
        assert_eq!(WorkerFault::parse("kill-after"), None);
        assert_eq!(WorkerFault::parse("kill-after:x"), None);
    }
}
