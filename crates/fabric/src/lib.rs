//! Distributed campaign fabric: sharded grids, worker processes and
//! replay-to-resume checkpointing.
//!
//! A verification sweep expands to independent [`mcversi_core::ScenarioSpec`]
//! cells; this crate turns that independence into a long-running service
//! shape:
//!
//! * [`shard`] splits a grid's cells into serialized [`GridShard`]s whose ids
//!   derive from cell *content* (never enumeration order) and merges per-cell
//!   results back deterministically;
//! * [`worker`] is the library half of the `mcversi-work` binary: it runs one
//!   shard and streams cell-attributed JSONL events;
//! * [`coordinator`] dispatches shards to a pool of worker child processes
//!   with work stealing across campaigns, heartbeat-based liveness and
//!   automatic re-dispatch of shards whose worker dies;
//! * [`journal`] is the checkpoint layer: a [`CheckpointSink`] appends every
//!   event to a JSONL journal, and [`JournalReplay`] reloads a partial
//!   journal so a resumed campaign skips completed work and still produces a
//!   final result bit-identical to an uninterrupted run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod journal;
pub mod shard;
pub mod worker;

pub use coordinator::{locate_worker, run_grid, FabricOptions, FabricReport, FabricStatsCounts};
pub use journal::{CheckpointSink, JournalReplay};
pub use shard::{merge_results, shard_cells, FabricError, GridShard, WorkerFault};
pub use worker::{run_shard, CellScopeSink};
