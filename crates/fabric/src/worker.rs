//! The worker half of the fabric: running one [`GridShard`] and streaming
//! cell-attributed events (the library behind the `mcversi-work` binary).

use crate::shard::{FabricError, GridShard};
use mcversi_core::campaign::run_sample_subset;
use mcversi_core::sink::{CampaignEvent, CampaignSink};
use mcversi_core::ScenarioSpec;

/// Rewrites the plain per-batch events of `run_sample_subset` into their
/// cell-attributed fabric forms: every [`CampaignEvent::SampleDone`] becomes
/// a [`CampaignEvent::SampleResult`] carrying the cell id, so a journal that
/// interleaves many cells (and many workers) stays unambiguous.  All other
/// events pass through unchanged.
pub struct CellScopeSink<'a> {
    cell: u64,
    inner: &'a mut dyn CampaignSink,
}

impl std::fmt::Debug for CellScopeSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellScopeSink")
            .field("cell", &self.cell)
            .finish_non_exhaustive()
    }
}

impl<'a> CellScopeSink<'a> {
    /// Scopes `inner` to the cell with id `cell`.
    pub fn new(cell: u64, inner: &'a mut dyn CampaignSink) -> Self {
        CellScopeSink { cell, inner }
    }
}

impl CampaignSink for CellScopeSink<'_> {
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::SampleDone { result } => {
                self.inner.on_event(&CampaignEvent::SampleResult {
                    cell: self.cell,
                    result: result.clone(),
                })
            }
            other => self.inner.on_event(other),
        }
    }
}

/// Runs every cell of `shard`, streaming cell-attributed events into `sink`:
/// `CellStart`, then the cell's sample events (with `SampleDone` rewritten to
/// `SampleResult`), then `CellDone`.
///
/// Samples whose indices appear in the shard's per-cell `skip` lists are not
/// run — the resume path: their results are already journaled.  A panicked
/// sample still yields a `SampleResult` (the sentinel result of
/// [`mcversi_core::SampleOutcome::into_result`]) so every requested sample
/// checkpoints exactly once.
///
/// # Errors
///
/// Fails when the shard's `skip` table does not parallel its `cells`.
pub fn run_shard(shard: &GridShard, sink: &mut dyn CampaignSink) -> Result<(), FabricError> {
    if shard.skip.len() != shard.cells.len() {
        return Err(FabricError(format!(
            "malformed shard {:#018x}: {} cells but {} skip lists",
            shard.id,
            shard.cells.len(),
            shard.skip.len()
        )));
    }
    for (cell, skip) in shard.cells.iter().zip(&shard.skip) {
        run_cell(cell, skip, sink);
    }
    Ok(())
}

/// Runs one cell of a shard (see [`run_shard`]).
fn run_cell(cell: &ScenarioSpec, skip: &[usize], sink: &mut dyn CampaignSink) {
    let id = cell.cell_id();
    sink.on_event(&CampaignEvent::CellStart {
        cell: id,
        label: cell.display_label(),
    });
    let indices: Vec<usize> = (0..cell.samples).filter(|i| !skip.contains(i)).collect();
    let config = cell.campaign();
    let mut scoped = CellScopeSink::new(id, sink);
    let outcomes = run_sample_subset(&config, &indices, cell.base_seed, &mut scoped);
    for outcome in outcomes {
        if let mcversi_core::SampleOutcome::Panicked { .. } = &outcome {
            sink.on_event(&CampaignEvent::SampleResult {
                cell: id,
                result: outcome.into_result(&config),
            });
        }
    }
    sink.on_event(&CampaignEvent::CellDone {
        cell: id,
        samples: indices.len(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::shard_cells;
    use mcversi_core::sink::NullSink;

    /// Collects raw events (unlike `CollectSink`, which reduces to results).
    #[derive(Default)]
    struct EventLog(Vec<CampaignEvent>);

    impl CampaignSink for EventLog {
        fn on_event(&mut self, event: &CampaignEvent) {
            self.0.push(event.clone());
        }
    }

    fn tiny_cell(seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::small();
        spec.base_seed = seed;
        spec.samples = 2;
        spec.test_size = 16;
        spec.iterations = 1;
        spec.max_test_runs = 2;
        spec
    }

    #[test]
    fn run_shard_streams_cell_attributed_events() {
        let cells = vec![tiny_cell(1), tiny_cell(50)];
        let shards = shard_cells(&cells, 1).unwrap();
        assert_eq!(shards.len(), 1);
        let mut log = EventLog::default();
        run_shard(&shards[0], &mut log).unwrap();

        let starts: Vec<u64> = log
            .0
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::CellStart { cell, .. } => Some(*cell),
                _ => None,
            })
            .collect();
        let mut expected = shards[0].cell_ids();
        expected.sort_unstable();
        let mut got = starts.clone();
        got.sort_unstable();
        assert_eq!(got, expected);

        // Two samples per cell, all rewritten to SampleResult; no bare
        // SampleDone survives.
        let results = log
            .0
            .iter()
            .filter(|e| matches!(e, CampaignEvent::SampleResult { .. }))
            .count();
        assert_eq!(results, 4);
        assert!(!log
            .0
            .iter()
            .any(|e| matches!(e, CampaignEvent::SampleDone { .. })));
        let dones = log
            .0
            .iter()
            .filter(|e| matches!(e, CampaignEvent::CellDone { .. }))
            .count();
        assert_eq!(dones, 2);
    }

    #[test]
    fn skip_lists_suppress_journaled_samples() {
        let cells = vec![tiny_cell(7)];
        let mut shards = shard_cells(&cells, 1).unwrap();
        shards[0].skip[0] = vec![0];
        let mut log = EventLog::default();
        run_shard(&shards[0], &mut log).unwrap();
        let seeds: Vec<u64> = log
            .0
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::SampleResult { result, .. } => Some(result.seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds, vec![8], "only index 1 (seed 7+1) runs");
        assert!(matches!(
            log.0.last(),
            Some(CampaignEvent::CellDone { samples: 1, .. })
        ));
    }

    #[test]
    fn malformed_skip_tables_are_rejected() {
        let cells = vec![tiny_cell(1)];
        let mut shards = shard_cells(&cells, 1).unwrap();
        shards[0].skip.clear();
        let err = run_shard(&shards[0], &mut NullSink).unwrap_err();
        assert!(err.0.contains("malformed shard"), "{err}");
    }
}
