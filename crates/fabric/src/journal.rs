//! Checkpointing: the append-only journal and its replay-to-resume loader.
//!
//! The journal is an ordinary campaign-event JSONL stream (the same format
//! `MCVERSI_JSONL` produces) with the fabric's cell-attributed records:
//! `CellStart` / `SampleResult` / `CellDone` checkpoints from workers, plus
//! `Resume` and `FabricStats` records from the coordinator.  Because every
//! line is self-contained, a journal cut off at an arbitrary byte loses at
//! most its torn final line — [`JournalReplay`] drops exactly that line and
//! treats everything before it as completed work.

use crate::shard::FabricError;
use mcversi_core::sink::{CampaignEvent, CampaignSink, EVENT_SCHEMA_VERSION};
use mcversi_core::CampaignResult;
use std::collections::BTreeMap;
use std::io::Write;

/// Journals every campaign event to an append-only JSONL file, flushed per
/// event so a killed process loses at most one torn line.
///
/// Opening an empty (or new) file writes the schema header; opening a
/// non-empty file appends without a second header, so an interrupted journal
/// resumes in place.
pub struct CheckpointSink {
    out: std::fs::File,
    lines: u64,
    header_needed: bool,
}

impl CheckpointSink {
    /// Opens `path` for appending, creating parent directories as needed.
    pub fn append(path: &str) -> std::io::Result<Self> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let header_needed = out.metadata()?.len() == 0;
        Ok(CheckpointSink {
            out,
            lines: 0,
            header_needed,
        })
    }

    /// Lines written by this sink instance (not counting pre-existing ones).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Appends one event (plus the schema header first, when the file was
    /// empty at open).
    pub fn record(&mut self, event: &CampaignEvent) {
        if self.header_needed {
            self.header_needed = false;
            if !matches!(event, CampaignEvent::Schema { .. }) {
                let header = CampaignEvent::Schema {
                    version: EVENT_SCHEMA_VERSION,
                };
                self.write_line(&header);
            }
        }
        self.write_line(event);
        let _ = self.out.flush();
    }

    fn write_line(&mut self, event: &CampaignEvent) {
        if let Ok(line) = serde_json::to_string(event) {
            debug_assert!(!line.contains('\n'), "events must be single-line");
            if writeln!(self.out, "{line}").is_ok() {
                self.lines += 1;
            }
        }
    }
}

impl std::fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl CampaignSink for CheckpointSink {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.record(event);
    }
}

/// Replay state of one grid cell, accumulated from journal records.
#[derive(Debug, Clone, Default)]
pub struct CellProgress {
    /// The cell's label, if a `CellStart` record carried one.
    pub label: Option<String>,
    /// Completed samples, keyed by seed.
    pub samples: BTreeMap<u64, CampaignResult>,
    /// Whether a `CellDone` record closed the cell.
    pub done: bool,
}

/// A partial journal reloaded for resumption: which cells completed, which
/// samples of partially-run cells already have results, and how often the
/// campaign has been resumed before.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Schema version declared by the journal header, if present.
    pub version: Option<u32>,
    /// Per-cell progress, keyed by cell id.
    pub cells: BTreeMap<u64, CellProgress>,
    /// Parsed event lines.
    pub events: usize,
    /// `Resume` records observed (prior resumptions of this journal).
    pub resumes: usize,
    /// Whether an unparseable final line was dropped (torn write).
    pub truncated_tail: bool,
}

impl JournalReplay {
    /// Loads and replays the journal at `path`.  A missing file replays as
    /// empty (a fresh campaign).
    pub fn load(path: &str) -> Result<Self, FabricError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::replay(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(JournalReplay::default()),
            Err(e) => Err(FabricError(format!("cannot read journal `{path}`: {e}"))),
        }
    }

    /// Replays a journal text.
    ///
    /// # Errors
    ///
    /// Fails on a schema version this build does not read, or on an
    /// unparseable line that is *not* the final one — a torn tail is expected
    /// after a kill, corruption in the middle of the journal is not.
    pub fn replay(text: &str) -> Result<Self, FabricError> {
        let mut replay = JournalReplay::default();
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        for (pos, &(idx, line)) in lines.iter().enumerate() {
            let event: CampaignEvent = match serde_json::from_str(line) {
                Ok(event) => event,
                Err(e) if pos + 1 == lines.len() => {
                    // Torn final line: the worker or coordinator died mid-write.
                    let _ = e;
                    replay.truncated_tail = true;
                    break;
                }
                Err(e) => {
                    return Err(FabricError(format!(
                        "journal line {}: {e} (corruption before the final line)",
                        idx + 1
                    )));
                }
            };
            replay.events += 1;
            match event {
                CampaignEvent::Schema { version } => {
                    if version != EVENT_SCHEMA_VERSION {
                        return Err(FabricError(format!(
                            "journal line {}: schema version {version} (this build reads \
                             {EVENT_SCHEMA_VERSION})",
                            idx + 1
                        )));
                    }
                    replay.version = Some(version);
                }
                CampaignEvent::CellStart { cell, label } => {
                    replay.cells.entry(cell).or_default().label = Some(label);
                }
                CampaignEvent::SampleResult { cell, result } => {
                    replay
                        .cells
                        .entry(cell)
                        .or_default()
                        .samples
                        .insert(result.seed, result);
                }
                CampaignEvent::CellDone { cell, .. } => {
                    replay.cells.entry(cell).or_default().done = true;
                }
                CampaignEvent::Resume { .. } => replay.resumes += 1,
                _ => {}
            }
        }
        Ok(replay)
    }

    /// Seeds of the journaled samples of `cell`, in ascending order.
    pub fn sample_seeds(&self, cell: u64) -> Vec<u64> {
        self.cells
            .get(&cell)
            .map(|c| c.samples.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `cell` was closed by a `CellDone` record.
    pub fn is_cell_done(&self, cell: u64) -> bool {
        self.cells.get(&cell).is_some_and(|c| c.done)
    }

    /// Total journaled sample results across all cells.
    pub fn total_samples(&self) -> usize {
        self.cells.values().map(|c| c.samples.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_core::GeneratorKind;
    use mcversi_mcm::ModelKind;
    use mcversi_sim::CoreStrength;
    use std::time::Duration;

    fn result(seed: u64) -> CampaignResult {
        CampaignResult {
            generator: GeneratorKind::McVerSiRand,
            bug: None,
            model: ModelKind::Tso,
            core: CoreStrength::Strong,
            seed,
            found: false,
            detail: None,
            test_runs: 4,
            found_at_run: None,
            simulated_cycles: 100,
            wall_time: Duration::from_millis(1),
            max_total_coverage: 0.5,
            final_mean_ndt: 1.0,
            pruned: 0,
            metrics: None,
            dedup: None,
        }
    }

    fn journal_text(events: &[CampaignEvent]) -> String {
        let mut text = serde_json::to_string(&CampaignEvent::Schema {
            version: EVENT_SCHEMA_VERSION,
        })
        .unwrap();
        for event in events {
            text.push('\n');
            text.push_str(&serde_json::to_string(event).unwrap());
        }
        text.push('\n');
        text
    }

    #[test]
    fn replay_accumulates_cells_samples_and_resumes() {
        let text = journal_text(&[
            CampaignEvent::CellStart {
                cell: 10,
                label: "a".into(),
            },
            CampaignEvent::SampleResult {
                cell: 10,
                result: result(100),
            },
            CampaignEvent::SampleResult {
                cell: 10,
                result: result(101),
            },
            CampaignEvent::CellDone {
                cell: 10,
                samples: 2,
            },
            CampaignEvent::SampleResult {
                cell: 11,
                result: result(200),
            },
            CampaignEvent::Resume {
                cells_skipped: 1,
                samples_skipped: 1,
            },
        ]);
        let replay = JournalReplay::replay(&text).unwrap();
        assert_eq!(replay.version, Some(EVENT_SCHEMA_VERSION));
        assert!(replay.is_cell_done(10));
        assert!(!replay.is_cell_done(11));
        assert_eq!(replay.sample_seeds(10), vec![100, 101]);
        assert_eq!(replay.sample_seeds(11), vec![200]);
        assert_eq!(replay.total_samples(), 3);
        assert_eq!(replay.resumes, 1);
        assert_eq!(replay.cells[&10].label.as_deref(), Some("a"));
        assert!(!replay.truncated_tail);
    }

    #[test]
    fn replay_tolerates_a_torn_final_line_only() {
        let mut text = journal_text(&[CampaignEvent::SampleResult {
            cell: 1,
            result: result(5),
        }]);
        text.push_str("{\"SampleResult\":{\"cell\":1,\"resu");
        let replay = JournalReplay::replay(&text).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.total_samples(), 1);

        // The same garbage *before* valid lines is corruption, not a torn
        // tail.
        let corrupt = format!(
            "{}\nnot json\n{}\n",
            serde_json::to_string(&CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION
            })
            .unwrap(),
            serde_json::to_string(&CampaignEvent::CellDone {
                cell: 1,
                samples: 0
            })
            .unwrap()
        );
        let err = JournalReplay::replay(&corrupt).unwrap_err();
        assert!(err.0.contains("corruption before the final line"), "{err}");
    }

    #[test]
    fn replay_rejects_foreign_schema_versions() {
        let text = "{\"Schema\":{\"version\":99}}\n";
        let err = JournalReplay::replay(text).unwrap_err();
        assert!(err.0.contains("schema version 99"), "{err}");
    }

    #[test]
    fn missing_journal_replays_as_empty() {
        let replay = JournalReplay::load("/nonexistent/journal.jsonl").unwrap();
        assert_eq!(replay.events, 0);
        assert!(replay.cells.is_empty());
    }

    #[test]
    fn checkpoint_sink_appends_without_a_second_header() {
        let dir =
            std::env::temp_dir().join(format!("mcversi-fabric-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);

        {
            let mut sink = CheckpointSink::append(path_str).unwrap();
            sink.record(&CampaignEvent::CellStart {
                cell: 1,
                label: "a".into(),
            });
            assert_eq!(sink.lines(), 2, "header + event");
        }
        {
            let mut sink = CheckpointSink::append(path_str).unwrap();
            sink.record(&CampaignEvent::CellDone {
                cell: 1,
                samples: 0,
            });
            assert_eq!(sink.lines(), 1, "append run writes no second header");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let headers = text.lines().filter(|l| l.contains("\"Schema\"")).count();
        assert_eq!(headers, 1);
        let replay = JournalReplay::replay(&text).unwrap();
        assert!(replay.is_cell_done(1));
        let _ = std::fs::remove_file(&path);
    }
}
