//! The multi-process coordinator: dispatches [`GridShard`]s to a pool of
//! `mcversi-work` child processes with work stealing across campaigns,
//! heartbeat-based liveness, automatic re-dispatch after worker loss, and
//! journal-backed checkpoint/resume.
//!
//! Every worker's stdout is a campaign-event JSONL stream.  The coordinator
//! forwards all events to the caller's live sink, journals the *checkpoint*
//! records (`CellStart`, `SampleResult`, `CellDone`, plus its own `Resume`
//! and `FabricStats`) through a [`CheckpointSink`], and deduplicates by
//! `(cell, seed)` so a re-dispatched shard can never journal a sample twice.

use crate::journal::{CheckpointSink, JournalReplay};
use crate::shard::{shard_cells, FabricError, GridShard, WorkerFault};
use mcversi_core::sink::{CampaignEvent, CampaignSink, EVENT_SCHEMA_VERSION};
use mcversi_core::{CampaignResult, ScenarioSpec};
use mcversi_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// Shard dispatches to worker processes.
static DISPATCHES: telemetry::Counter = telemetry::Counter::new("fabric.dispatch");
/// Dispatches taken from another worker's queue.
static STEALS: telemetry::Counter = telemetry::Counter::new("fabric.steal");
/// Shards re-dispatched after a worker died or went silent.
static REDISPATCHES: telemetry::Counter = telemetry::Counter::new("fabric.redispatch");
/// Samples skipped because a resume journal already held their results.
static RESUME_SKIPS: telemetry::Counter = telemetry::Counter::new("fabric.resume_skip");

/// How the coordinator runs a campaign.
#[derive(Debug, Clone)]
pub struct FabricOptions {
    /// Worker child processes to keep busy.
    pub workers: usize,
    /// Shards to split the grid into (`0` = twice the worker count, so work
    /// stealing has spare shards to take).
    pub shards: usize,
    /// Path of the `mcversi-work` binary (see [`locate_worker`]).
    pub worker_program: PathBuf,
    /// Checkpoint journal path; an existing journal is resumed.
    pub journal: Option<String>,
    /// A worker silent for longer than this is presumed dead: its process is
    /// killed and its shard re-dispatched.
    pub heartbeat_timeout: Duration,
    /// Re-dispatch attempts per dispatch chain after worker loss; exceeding
    /// it fails the campaign (`0` = any worker loss is fatal).
    pub max_redispatch: usize,
    /// Fault injected into the first dispatched shard (tests/CI only); never
    /// carried over to re-dispatches.
    pub fault: Option<WorkerFault>,
}

impl FabricOptions {
    /// Defaults: 2 workers, auto shard count, 30 s heartbeat, 2 retries.
    pub fn new(worker_program: PathBuf) -> Self {
        FabricOptions {
            workers: 2,
            shards: 0,
            worker_program,
            journal: None,
            heartbeat_timeout: Duration::from_secs(30),
            max_redispatch: 2,
            fault: None,
        }
    }
}

/// Coordinator activity counts, mirrored into the `fabric.*` telemetry
/// counters and the journal's final [`CampaignEvent::FabricStats`] record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStatsCounts {
    /// Shard dispatches to worker processes.
    pub dispatched: u64,
    /// Dispatches stolen from another worker's queue.
    pub stolen: u64,
    /// Shards re-dispatched after worker loss.
    pub redispatched: u64,
    /// Samples skipped thanks to the resume journal.
    pub resume_skipped: u64,
}

/// The outcome of a coordinated campaign.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Per-cell results in original grid order, each cell's results in seed
    /// order — bit-identical to an uninterrupted in-process run.
    pub cells: Vec<(ScenarioSpec, Vec<CampaignResult>)>,
    /// Coordinator activity counts.
    pub stats: FabricStatsCounts,
    /// Whether a non-empty journal was resumed.
    pub resumed: bool,
}

/// Locates the `mcversi-work` binary next to the current executable (same
/// directory, or up to two levels up — covering `target/<profile>/` and
/// `target/<profile>/deps/` layouts).
pub fn locate_worker() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("mcversi-work{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// A line-level message from one worker's stdout reader thread.
enum WorkerMsg {
    /// A parsed event line (boxed: events carry full result payloads).
    Event(Box<CampaignEvent>),
    /// An unparseable line (torn write or corruption); never journaled.
    BadLine,
    /// The worker's stdout closed: it exited or was killed.
    Eof,
}

/// One worker slot of the pool.
struct Slot {
    /// The running child, if the slot is busy.
    child: Option<Child>,
    /// The shard the child is running, with its re-dispatch count.
    work: Option<(GridShard, usize)>,
    /// Dispatch generation: messages from earlier generations are stale.
    generation: u64,
    /// Coordinator-clock nanoseconds at the last line from this worker.
    last_seen_ns: u64,
}

/// Per-cell bookkeeping the coordinator accumulates.
struct Progress {
    /// Completed results per cell, keyed `cell id → seed → result`.
    results: BTreeMap<u64, BTreeMap<u64, CampaignResult>>,
    /// `(cell, seed)` pairs already journaled (dedup for re-dispatches).
    journaled: BTreeSet<(u64, u64)>,
    /// Cells whose `CellStart` was already journaled.
    started: BTreeSet<u64>,
    /// Cells whose `CellDone` was already journaled.
    closed: BTreeSet<u64>,
}

/// Runs `cells` through the worker pool and reassembles their results.
///
/// Events stream into `sink` as they arrive (worker `Schema` headers are
/// verified and dropped); when `options.journal` is set, checkpoint records
/// are appended there and an existing journal is replayed first — completed
/// cells are skipped entirely, partially-complete cells re-run only their
/// missing samples, and the merged final results are bit-identical to an
/// uninterrupted run.
///
/// # Errors
///
/// Fails when the journal is unusable or names cells outside this grid, when
/// a worker cannot be spawned, or when a shard exceeds
/// [`FabricOptions::max_redispatch`] worker losses.
pub fn run_grid(
    cells: &[ScenarioSpec],
    options: &FabricOptions,
    sink: &mut dyn CampaignSink,
) -> Result<FabricReport, FabricError> {
    let mut stats = FabricStatsCounts::default();
    let by_id: BTreeMap<u64, &ScenarioSpec> =
        cells.iter().map(|cell| (cell.cell_id(), cell)).collect();
    if by_id.len() != cells.len() {
        // Delegate the error message to the sharder, which names the twins.
        shard_cells(cells, 1)?;
    }

    // ---- replay-to-resume ----
    let mut journal = match &options.journal {
        Some(path) => Some(CheckpointSink::append(path)?),
        None => None,
    };
    let replay = match &options.journal {
        Some(path) => JournalReplay::load(path)?,
        None => JournalReplay::default(),
    };
    let mut progress = Progress {
        results: BTreeMap::new(),
        journaled: BTreeSet::new(),
        started: BTreeSet::new(),
        closed: BTreeSet::new(),
    };
    let resumed = replay.events > 0;
    let mut cells_skipped = 0usize;
    let mut samples_skipped = 0usize;
    for (&cell_id, state) in &replay.cells {
        let Some(spec) = by_id.get(&cell_id) else {
            return Err(FabricError(format!(
                "journal names cell {cell_id:#018x}, which is not in this grid \
                 (resuming a different campaign?)"
            )));
        };
        progress.started.insert(cell_id);
        let mut kept = 0usize;
        for (&seed, result) in &state.samples {
            // Only seeds of this cell's sample range count; anything else in
            // the journal would be a corrupted record.
            let index = seed.wrapping_sub(spec.base_seed);
            if index < spec.samples as u64 {
                progress
                    .results
                    .entry(cell_id)
                    .or_default()
                    .insert(seed, result.clone());
                progress.journaled.insert((cell_id, seed));
                kept += 1;
            }
        }
        samples_skipped += kept;
        if kept >= spec.samples {
            cells_skipped += 1;
            progress.closed.insert(cell_id);
        }
    }
    if resumed {
        RESUME_SKIPS.add(samples_skipped as u64);
        stats.resume_skipped = samples_skipped as u64;
        let event = CampaignEvent::Resume {
            cells_skipped,
            samples_skipped,
        };
        if let Some(journal) = journal.as_mut() {
            journal.record(&event);
        }
        sink.on_event(&event);
    }

    // ---- shard the remaining work ----
    let pending: Vec<ScenarioSpec> = cells
        .iter()
        .filter(|cell| {
            let have = progress
                .results
                .get(&cell.cell_id())
                .map_or(0, BTreeMap::len);
            have < cell.samples
        })
        .cloned()
        .collect();
    if !pending.is_empty() {
        let shard_count = if options.shards > 0 {
            options.shards
        } else {
            (options.workers * 2).max(1)
        }
        .min(pending.len());
        let mut shards = shard_cells(&pending, shard_count)?;
        shards.sort_by_key(|shard| shard.id);
        for shard in &mut shards {
            for (cell, skip) in shard.cells.iter().zip(shard.skip.iter_mut()) {
                let id = cell.cell_id();
                if let Some(done) = progress.results.get(&id) {
                    *skip = done
                        .keys()
                        .map(|seed| seed.wrapping_sub(cell.base_seed) as usize)
                        .filter(|&index| index < cell.samples)
                        .collect();
                }
            }
        }
        if let Some(first) = shards.first_mut() {
            first.fault = options.fault;
        }
        run_pool(
            &mut shards,
            options,
            sink,
            &mut journal,
            &mut progress,
            &mut stats,
            &by_id,
        )?;
    }

    // ---- final stats and merge ----
    let event = CampaignEvent::FabricStats {
        dispatched: stats.dispatched,
        stolen: stats.stolen,
        redispatched: stats.redispatched,
        resume_skipped: stats.resume_skipped,
    };
    if let Some(journal) = journal.as_mut() {
        journal.record(&event);
    }
    sink.on_event(&event);

    let per_cell: BTreeMap<u64, Vec<CampaignResult>> = progress
        .results
        .into_iter()
        .map(|(cell, by_seed)| (cell, by_seed.into_values().collect()))
        .collect();
    let merged = crate::shard::merge_results(cells, &per_cell)?;
    Ok(FabricReport {
        cells: merged,
        stats,
        resumed,
    })
}

/// Runs the dispatch/steal/heartbeat loop until every pending shard's cells
/// are complete (see [`run_grid`]).
#[allow(clippy::too_many_arguments)]
fn run_pool(
    shards: &mut Vec<GridShard>,
    options: &FabricOptions,
    sink: &mut dyn CampaignSink,
    journal: &mut Option<CheckpointSink>,
    progress: &mut Progress,
    stats: &mut FabricStatsCounts,
    by_id: &BTreeMap<u64, &ScenarioSpec>,
) -> Result<(), FabricError> {
    let workers = options.workers.max(1).min(shards.len().max(1));
    // Round-robin the shards over the worker slots' queues; an idle slot
    // drains its own queue first and steals from the fullest other queue
    // once it runs dry.
    let mut queues: Vec<VecDeque<(GridShard, usize)>> =
        (0..workers).map(|_| VecDeque::new()).collect();
    for (idx, shard) in shards.drain(..).enumerate() {
        queues[idx % workers].push_back((shard, 0));
    }

    let clock = telemetry::Stopwatch::start();
    let heartbeat_ns = options.heartbeat_timeout.as_nanos() as u64;
    let (sender, receiver) = mpsc::channel::<(usize, u64, WorkerMsg)>();
    let mut slots: Vec<Slot> = (0..workers)
        .map(|_| Slot {
            child: None,
            work: None,
            generation: 0,
            last_seen_ns: 0,
        })
        .collect();

    let outcome = loop {
        // Keep every idle slot fed: own queue first, then steal.
        let mut spawn_error = None;
        for slot_idx in 0..workers {
            if slots[slot_idx].child.is_some() {
                continue;
            }
            let work = queues[slot_idx].pop_front().or_else(|| {
                let victim = (0..workers)
                    .filter(|&other| other != slot_idx)
                    .max_by_key(|&other| queues[other].len())
                    .filter(|&other| !queues[other].is_empty())?;
                let stolen = queues[victim].pop_back();
                if stolen.is_some() {
                    STEALS.incr();
                    stats.stolen += 1;
                }
                stolen
            });
            let Some((shard, retries)) = work else {
                continue;
            };
            slots[slot_idx].generation += 1;
            let generation = slots[slot_idx].generation;
            slots[slot_idx].last_seen_ns = clock.elapsed().as_nanos() as u64;
            match spawn_worker(
                &options.worker_program,
                &shard,
                slot_idx,
                generation,
                &sender,
            ) {
                Ok(child) => {
                    DISPATCHES.incr();
                    stats.dispatched += 1;
                    slots[slot_idx].child = Some(child);
                    slots[slot_idx].work = Some((shard, retries));
                }
                Err(e) => {
                    // Abort the campaign (the journal keeps its progress for
                    // a later resume).
                    spawn_error = Some(FabricError(format!(
                        "cannot spawn worker `{}`: {e}",
                        options.worker_program.display()
                    )));
                    break;
                }
            }
        }
        if let Some(err) = spawn_error {
            break Err(err);
        }

        // Done when no queued work and no busy slot remains.
        if slots.iter().all(|slot| slot.child.is_none()) && queues.iter().all(VecDeque::is_empty) {
            break Ok(());
        }

        match receiver.recv_timeout(Duration::from_millis(25)) {
            Ok((slot_idx, generation, msg)) => {
                if slots[slot_idx].generation != generation {
                    continue; // stale message from a killed worker
                }
                slots[slot_idx].last_seen_ns = clock.elapsed().as_nanos() as u64;
                match msg {
                    WorkerMsg::Event(event) => {
                        handle_event(*event, sink, journal, progress, by_id);
                    }
                    WorkerMsg::BadLine => {
                        // Torn or corrupt worker output: ignore the line; the
                        // shard-completion check decides whether anything was
                        // lost.
                    }
                    WorkerMsg::Eof => {
                        let slot = &mut slots[slot_idx];
                        if let Some(mut child) = slot.child.take() {
                            let _ = child.wait();
                        }
                        let Some((shard, retries)) = slot.work.take() else {
                            continue;
                        };
                        if let Some(rest) = unfinished_remainder(&shard, progress) {
                            if retries >= options.max_redispatch {
                                break Err(FabricError(format!(
                                    "worker lost shard {:#018x} {} time(s) \
                                     (max_redispatch {}); resume from the journal \
                                     to continue",
                                    shard.id,
                                    retries + 1,
                                    options.max_redispatch
                                )));
                            }
                            REDISPATCHES.incr();
                            stats.redispatched += 1;
                            queues[slot_idx].push_front((rest, retries + 1));
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All reader threads gone while slots are still busy: treat
                // as worker loss on every busy slot (next loop re-checks).
                for slot in &mut slots {
                    if let Some(mut child) = slot.child.take() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
            }
        }

        // Heartbeat: a busy worker silent past the timeout is presumed hung;
        // kill it — its reader thread then reports Eof and the normal
        // worker-loss path re-dispatches the shard.
        let now_ns = clock.elapsed().as_nanos() as u64;
        for slot in &mut slots {
            if let Some(child) = slot.child.as_mut() {
                if now_ns.saturating_sub(slot.last_seen_ns) > heartbeat_ns {
                    let _ = child.kill();
                    slot.last_seen_ns = now_ns; // one kill per timeout
                }
            }
        }
    };

    // Tear down whatever is still running (error paths; on success the pool
    // is already empty).
    for slot in &mut slots {
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    outcome
}

/// Spawns one `mcversi-work` process for `shard` and its stdout reader
/// thread.
fn spawn_worker(
    program: &std::path::Path,
    shard: &GridShard,
    slot_idx: usize,
    generation: u64,
    sender: &mpsc::Sender<(usize, u64, WorkerMsg)>,
) -> std::io::Result<Child> {
    let mut child = Command::new(program)
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(shard.to_json().as_bytes());
        // Dropping stdin closes the pipe: the worker sees EOF and starts.
    }
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("worker stdout not captured"))?;
    let sender = sender.clone();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let msg = match serde_json::from_str::<CampaignEvent>(&line) {
                Ok(event) => WorkerMsg::Event(Box::new(event)),
                Err(_) => WorkerMsg::BadLine,
            };
            if sender.send((slot_idx, generation, msg)).is_err() {
                return;
            }
        }
        let _ = sender.send((slot_idx, generation, WorkerMsg::Eof));
    });
    Ok(child)
}

/// Routes one worker event: live sink always (except verified `Schema`
/// headers), journal only for novel checkpoint records.
fn handle_event(
    event: CampaignEvent,
    sink: &mut dyn CampaignSink,
    journal: &mut Option<CheckpointSink>,
    progress: &mut Progress,
    by_id: &BTreeMap<u64, &ScenarioSpec>,
) {
    match &event {
        CampaignEvent::Schema { version } => {
            // Worker streams carry their own header; verified here, not
            // forwarded (the journal and the live stream have their own).
            debug_assert_eq!(*version, EVENT_SCHEMA_VERSION);
            return;
        }
        CampaignEvent::CellStart { cell, .. } => {
            if !progress.started.insert(*cell) {
                return; // re-dispatch replays the cell start
            }
        }
        CampaignEvent::SampleResult { cell, result } => {
            if !progress.journaled.insert((*cell, result.seed)) {
                return; // duplicate from an overlapping re-dispatch
            }
            progress
                .results
                .entry(*cell)
                .or_default()
                .insert(result.seed, result.clone());
        }
        CampaignEvent::CellDone { cell, .. } => {
            // Re-synthesized below once the cell is globally complete; the
            // worker's own record covers only its dispatch.
            let complete = by_id.get(cell).is_some_and(|spec| {
                progress.results.get(cell).map_or(0, BTreeMap::len) >= spec.samples
            });
            if !complete || !progress.closed.insert(*cell) {
                return;
            }
            let done = CampaignEvent::CellDone {
                cell: *cell,
                samples: progress.results.get(cell).map_or(0, BTreeMap::len),
            };
            if let Some(journal) = journal.as_mut() {
                journal.record(&done);
            }
            sink.on_event(&done);
            return;
        }
        _ => {
            // Progress events (SampleStart/TestRun/Violation/Metrics/
            // SamplePanic): live sink only, the journal stays compact.
            sink.on_event(&event);
            return;
        }
    }
    if let Some(journal) = journal.as_mut() {
        journal.record(&event);
    }
    sink.on_event(&event);
}

/// The unfinished remainder of a dead worker's shard: its cells minus the
/// globally completed samples.  `None` when the shard is in fact complete.
fn unfinished_remainder(shard: &GridShard, progress: &Progress) -> Option<GridShard> {
    let mut cells = Vec::new();
    let mut skip = Vec::new();
    for cell in &shard.cells {
        let id = cell.cell_id();
        let done: Vec<usize> = progress
            .results
            .get(&id)
            .map(|by_seed| {
                by_seed
                    .keys()
                    .map(|seed| seed.wrapping_sub(cell.base_seed) as usize)
                    .filter(|&index| index < cell.samples)
                    .collect()
            })
            .unwrap_or_default();
        if done.len() < cell.samples {
            cells.push(cell.clone());
            skip.push(done);
        }
    }
    if cells.is_empty() {
        return None;
    }
    let ids: Vec<u64> = cells.iter().map(ScenarioSpec::cell_id).collect();
    Some(GridShard {
        id: crate::shard::shard_id(&ids),
        cells,
        skip,
        fault: None, // faults fire on the first dispatch only
    })
}
