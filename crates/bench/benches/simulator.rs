//! Criterion bench: simulator throughput (one iteration of a random test).
//!
//! Together with the checker bench this reproduces the feasibility argument of
//! §5.2.1: test-run execution dominates, checking stays a modest fraction, and
//! the host-assisted reset keeps per-iteration overhead small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_core::lowering::lower;
use mcversi_sim::{BugConfig, ProtocolKind, System, SystemConfig};
use mcversi_testgen::{RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    for protocol in [ProtocolKind::Mesi, ProtocolKind::TsoCc] {
        for &ops in &[64usize, 256] {
            let system_cfg = SystemConfig::small(protocol);
            let params = TestGenParams::small()
                .with_threads(system_cfg.num_cores)
                .with_test_size(ops)
                .with_test_memory(1024);
            let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(5));
            let program = lower(&test);
            let label = format!("{}-{}ops", protocol.name(), ops);
            group.bench_with_input(
                BenchmarkId::new("iteration", label),
                &program,
                |bench, program| {
                    let mut system = System::new(system_cfg.clone(), BugConfig::none(), 11);
                    bench.iter(|| {
                        // Note: under extreme contention a rare iteration can
                        // exceed its cycle budget (see DESIGN.md, known
                        // limitations); the bench measures throughput and does
                        // not assert on the outcome.
                        let outcome = system.run_iteration(program);
                        outcome.cycles
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
