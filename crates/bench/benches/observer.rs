//! Criterion bench: per-iteration observer cost.
//!
//! One test-run executes the same program for several iterations; the
//! observer's static event set depends only on the program, so rebuilding it
//! every iteration (`fresh`) pays program-walk, map-construction and
//! relation allocations that reuse (`reused`, via `ExecObserver::reset`)
//! avoids.  This isolates the "per-iteration allocations in the observer"
//! cost that the simulator bench buries under cache and network simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_core::lowering::lower;
use mcversi_sim::observer::ExecObserver;
use mcversi_sim::ObservedOp;
use mcversi_testgen::{RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Replays a plausible completed iteration into the observer: every static
/// operation of the program reports completion with its lowered value.
fn replay(observer: &mut ExecObserver, program: &mcversi_sim::TestProgram) {
    use mcversi_sim::TestOpKind;
    for (thread, ops) in program.threads().iter().enumerate() {
        for (poi, op) in ops.iter().enumerate() {
            let poi = poi as u32;
            match op.kind {
                TestOpKind::Read | TestOpKind::ReadAddrDp => observer.record(
                    thread,
                    ObservedOp::Load {
                        poi,
                        addr: op.addr,
                        value: 0,
                    },
                ),
                TestOpKind::Write { value }
                | TestOpKind::WriteDataDp { value }
                | TestOpKind::WriteCtrlDp { value } => observer.record(
                    thread,
                    ObservedOp::Store {
                        poi,
                        addr: op.addr,
                        value,
                        overwritten: 0,
                    },
                ),
                TestOpKind::ReadModifyWrite { value } => observer.record(
                    thread,
                    ObservedOp::Rmw {
                        poi,
                        addr: op.addr,
                        write_value: value,
                        read_value: 0,
                    },
                ),
                TestOpKind::Fence { .. } => observer.record(thread, ObservedOp::Fence { poi }),
                TestOpKind::CacheFlush | TestOpKind::Delay { .. } => {}
            }
        }
    }
}

fn bench_observer(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer");
    for &ops in &[64usize, 256, 1024] {
        let params = TestGenParams::small()
            .with_threads(4)
            .with_test_size(ops)
            .with_test_memory(1024);
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(5));
        let program = lower(&test);

        group.bench_with_input(
            BenchmarkId::new("fresh", format!("{ops}ops")),
            &program,
            |bench, program| {
                bench.iter(|| {
                    let mut observer = ExecObserver::new(program);
                    replay(&mut observer, program);
                    observer.finish().len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reused", format!("{ops}ops")),
            &program,
            |bench, program| {
                let mut observer = ExecObserver::new(program);
                bench.iter(|| {
                    observer.reset();
                    replay(&mut observer, program);
                    observer.finish().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_observer);
criterion_main!(benches);
