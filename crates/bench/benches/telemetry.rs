//! Criterion bench: the telemetry facade's hot-path cost.
//!
//! Pins the central promise of the instrumentation layer: with telemetry
//! disabled a counter increment or span is a single relaxed atomic load, so
//! the fully-instrumented simulator runs at the same speed as an
//! uninstrumented one (<1% end-to-end overhead).  The enabled variants bound
//! what a metrics-collecting campaign pays.
//!
//! `telemetry::enable()` is sticky for the whole process, so every disabled
//! measurement runs before the first `enable()` call — keep the bench order.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcversi_core::lowering::lower;
use mcversi_sim::{BugConfig, ProtocolKind, System, SystemConfig};
use mcversi_telemetry as telemetry;
use mcversi_testgen::{RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

static BENCH_COUNTER: telemetry::Counter = telemetry::Counter::new("bench.counter");
static BENCH_HIST: telemetry::Histogram = telemetry::Histogram::new("bench.hist");
static BENCH_TIMER: telemetry::Timer = telemetry::Timer::new("bench.timer");

/// One simulator iteration over a small random MESI program, the same setup
/// as the `simulator` bench — here run with telemetry off and then on to
/// expose the facade's end-to-end overhead.
fn sim_iteration(c: &mut Criterion, label: &str) {
    let system_cfg = SystemConfig::small(ProtocolKind::Mesi);
    let params = TestGenParams::small()
        .with_threads(system_cfg.num_cores)
        .with_test_size(256)
        .with_test_memory(1024);
    let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(5));
    let program = lower(&test);
    let mut system = System::new(system_cfg, BugConfig::none(), 11);
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    group.bench_function(label, |bench| {
        bench.iter(|| system.run_iteration(&program).cycles);
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // -- disabled path (must precede the first enable(), which is sticky) --
    {
        let mut group = c.benchmark_group("telemetry");
        group.bench_function("counter-disabled", |bench| {
            bench.iter(|| BENCH_COUNTER.incr());
        });
        group.bench_function("histogram-disabled", |bench| {
            bench.iter(|| BENCH_HIST.record(black_box(37)));
        });
        group.bench_function("span-disabled", |bench| {
            bench.iter(|| drop(BENCH_TIMER.span()));
        });
        group.finish();
    }
    sim_iteration(c, "sim-iteration-disabled");

    // -- enabled path --
    telemetry::enable();
    telemetry::reset_local();
    {
        let mut group = c.benchmark_group("telemetry");
        group.bench_function("counter-enabled", |bench| {
            bench.iter(|| BENCH_COUNTER.incr());
        });
        group.bench_function("histogram-enabled", |bench| {
            bench.iter(|| BENCH_HIST.record(black_box(37)));
        });
        group.bench_function("span-enabled", |bench| {
            bench.iter(|| drop(BENCH_TIMER.span()));
        });
        group.finish();
    }
    sim_iteration(c, "sim-iteration-enabled");
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
