//! Criterion bench: end-to-end litmus test-run throughput.
//!
//! Measures the wall-clock cost of one complete test-run (several iterations,
//! checking included) of the MP litmus shape — the unit of work whose
//! throughput the simulation-aware optimisations of §4 are designed to
//! maximise.

use criterion::{criterion_group, criterion_main, Criterion};
use mcversi_core::{McVerSiConfig, TestRunner};
use mcversi_sim::BugConfig;
use mcversi_testgen::litmus;

fn bench_litmus(c: &mut Criterion) {
    let suite = litmus::default_suite();
    let mp = suite.iter().find(|t| t.name == "MP").expect("MP exists");
    let repeated = litmus::repeat_test(&mp.test, 8);

    let mut group = c.benchmark_group("litmus");
    group.sample_size(20);
    group.bench_function("mp_test_run", |bench| {
        let cfg = McVerSiConfig::small().with_iterations(3);
        let mut runner = TestRunner::new(cfg, BugConfig::none());
        bench.iter(|| {
            let result = runner.run_test(&repeated);
            assert!(!result.verdict.is_bug());
            result.cycles
        });
    });
    group.finish();
}

criterion_group!(benches, bench_litmus);
criterion_main!(benches);
