//! Criterion bench: selective vs. single-point crossover cost.
//!
//! Crossover runs once per test-run in the GP loop, so its cost must be
//! negligible against simulation; this bench confirms that for 1k-gene tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_testgen::ndt::NdtAnalysis;
use mcversi_testgen::{
    selective_crossover_mutate, single_point_crossover_mutate, RandomTestGenerator, TestGenParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    for &size in &[100usize, 1000] {
        let params = TestGenParams::paper_default(8 * 1024).with_test_size(size);
        let gen = RandomTestGenerator::new(params.clone());
        let t1 = gen.generate(&mut StdRng::seed_from_u64(1));
        let t2 = gen.generate(&mut StdRng::seed_from_u64(2));
        let mut a1 = NdtAnalysis::empty();
        a1.ndt = 2.0;
        a1.fitaddrs = t1.addresses().into_iter().take(8).collect();
        let mut a2 = NdtAnalysis::empty();
        a2.ndt = 1.5;
        a2.fitaddrs = t2.addresses().into_iter().take(8).collect();

        group.bench_with_input(BenchmarkId::new("selective", size), &size, |bench, _| {
            let mut rng = StdRng::seed_from_u64(3);
            bench.iter(|| selective_crossover_mutate(&t1, &t2, &a1, &a2, &params, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("single_point", size), &size, |bench, _| {
            let mut rng = StdRng::seed_from_u64(4);
            bench.iter(|| single_point_crossover_mutate(&t1, &t2, &params, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
