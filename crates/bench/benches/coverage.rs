//! Criterion bench: adaptive-coverage fitness evaluation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mcversi_core::{AdaptiveCoverage, AdaptiveCoverageConfig};
use mcversi_sim::protocol::mesi;
use mcversi_sim::CoverageRecorder;
use std::collections::BTreeSet;

fn bench_coverage(c: &mut Criterion) {
    let universe = mesi::all_transitions();
    let mut recorder = CoverageRecorder::new();
    for (i, t) in universe.iter().enumerate() {
        for _ in 0..(i % 7) {
            recorder.record(*t);
        }
    }
    let run: BTreeSet<_> = universe.iter().copied().step_by(3).collect();

    c.bench_function("adaptive_coverage_fitness", |bench| {
        let mut adaptive = AdaptiveCoverage::new(AdaptiveCoverageConfig::default());
        bench.iter(|| adaptive.fitness(&run, &recorder, &universe));
    });

    c.bench_function("coverage_total_fraction", |bench| {
        bench.iter(|| recorder.total_coverage(&universe));
    });
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
