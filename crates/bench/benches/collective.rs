//! Criterion bench: collective checking vs. per-execution checking.
//!
//! A repeated-litmus campaign re-runs each staged test for many iterations,
//! so most iterations reproduce an already-seen outcome.  Per-execution
//! checking pays one `Checker::check` per iteration; collective checking
//! deduplicates by execution signature and lets the cycle oracle certify
//! most novel outcomes with zero checker runs.  The preamble pins the
//! checker-invocation reduction (>= 5x, measured through the `mcm.checks`
//! telemetry counter) and reports the end-to-end speedup; the criterion
//! groups then measure both modes' full campaign wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use mcversi_core::McVerSiConfig;
use mcversi_core::{run_campaign, CampaignConfig, CampaignResult, CheckingMode, GeneratorKind};
use mcversi_telemetry::Stopwatch;
use std::time::Duration;

/// A heavy repeated-test campaign: every staged litmus test runs for 30
/// iterations, so signature deduplication has plenty to collapse.
fn campaign(checking: CheckingMode) -> CampaignConfig {
    let mcversi = McVerSiConfig::small()
        .with_test_size(32)
        .with_iterations(30);
    CampaignConfig::new(
        GeneratorKind::DiyLitmus,
        None,
        mcversi,
        12,
        Duration::from_secs(600),
    )
    .with_checking(checking)
}

fn checker_calls(result: &CampaignResult) -> u64 {
    *result
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .counters
        .get("mcm.checks")
        .unwrap_or(&0)
}

fn bench_collective(c: &mut Criterion) {
    // Preamble: one instrumented pass per mode pins the reduction factor the
    // acceptance criterion asks for and reports the end-to-end speedup.
    let watch = Stopwatch::start();
    let per = run_campaign(&campaign(CheckingMode::PerExec).with_metrics(0), 5);
    let per_wall = watch.elapsed();
    let watch = Stopwatch::start();
    let coll = run_campaign(&campaign(CheckingMode::Collective).with_metrics(0), 5);
    let coll_wall = watch.elapsed();
    let (per_checks, coll_checks) = (checker_calls(&per), checker_calls(&coll));
    let dedup = coll.dedup.expect("collective mode reports dedup stats");
    eprintln!(
        "collective checking: {per_checks} -> {coll_checks} Checker::check calls \
         ({:.1}x fewer), {} oracle-certified of {} executions; \
         end-to-end {:?} -> {:?} ({:.2}x)",
        per_checks as f64 / coll_checks.max(1) as f64,
        dedup.oracle_valid,
        dedup.executions,
        per_wall,
        coll_wall,
        per_wall.as_secs_f64() / coll_wall.as_secs_f64().max(1e-9),
    );
    assert!(
        per_checks >= 5 * coll_checks.max(1),
        "the >=5x checker-invocation reduction regressed: \
         per_exec={per_checks} collective={coll_checks}"
    );

    let mut group = c.benchmark_group("collective");
    group.sample_size(10);
    for (name, mode) in [
        ("per_exec", CheckingMode::PerExec),
        ("collective", CheckingMode::Collective),
    ] {
        let cfg = campaign(mode);
        group.bench_function(name, |b| b.iter(|| run_campaign(&cfg, 7)));
    }
    group.finish();
}

criterion_group!(benches, bench_collective);
criterion_main!(benches);
