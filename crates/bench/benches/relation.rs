//! Criterion bench: dense-bitset transitive closure vs. the BTree baseline.
//!
//! `Relation::transitive_closure` runs on every candidate-execution build
//! (closing the coherence order), so the ROADMAP lists it as a perf hot spot.
//! This bench compares the shipped bitset implementation against the previous
//! BTree-set BFS (reimplemented here as the baseline) on the relation shapes
//! the checker actually produces: long per-address chains (coherence order)
//! and bushy random DAGs (derived happens-before unions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_mcm::relation::Relation;
use mcversi_mcm::EventId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The original BTree-based closure, kept verbatim as the comparison baseline.
fn btree_closure(rel: &Relation) -> Relation {
    let mut out = Relation::new();
    for start in rel.nodes() {
        let mut stack: Vec<EventId> = rel.successors(start).collect();
        let mut seen: BTreeSet<EventId> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                out.insert(start, n);
                stack.extend(rel.successors(n));
            }
        }
    }
    out
}

/// Several same-address coherence chains, the closure the execution builder
/// computes on every `build()`.
fn coherence_chains(chains: u32, len: u32) -> Relation {
    let mut rel = Relation::new();
    for c in 0..chains {
        for i in 0..len - 1 {
            rel.insert(EventId(c * len + i), EventId(c * len + i + 1));
        }
    }
    rel
}

/// A random DAG shaped like a derived happens-before union.
fn random_dag(nodes: u32, edges: u32, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new();
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes - 1);
        let b = rng.gen_range(a + 1..nodes);
        rel.insert(EventId(a), EventId(b));
    }
    rel
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation_closure");
    let inputs: Vec<(&str, Relation)> = vec![
        ("chains_8x64", coherence_chains(8, 64)),
        ("chains_4x256", coherence_chains(4, 256)),
        ("dag_256n_1024e", random_dag(256, 1024, 7)),
        ("dag_1024n_4096e", random_dag(1024, 4096, 11)),
    ];
    for (name, rel) in &inputs {
        group.bench_with_input(BenchmarkId::new("bitset", name), rel, |bench, rel| {
            bench.iter(|| {
                let closed = rel.transitive_closure();
                assert!(closed.len() >= rel.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("btree", name), rel, |bench, rel| {
            bench.iter(|| {
                let closed = btree_closure(rel);
                assert!(closed.len() >= rel.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
