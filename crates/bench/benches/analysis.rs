//! Criterion bench: static-analysis pass cost and the pre-simulation prune
//! payoff.
//!
//! Two groups:
//!
//! * `analysis` — per-pass cost (dataflow construction, the lint battery,
//!   cycle classification) over generated programs of increasing size.  The
//!   prune hook runs dataflow + an early-exit classification per generated
//!   test, so these numbers bound its per-test overhead; they should stay
//!   orders of magnitude below a simulated test-run.
//! * `prune` — samples-to-first-violation demonstration on a relaxed-core
//!   ARMish cell seeded with the store-queue data-dependency bug.  Random
//!   generation at test size 32 emits mostly statically inert tests; with the
//!   prune off the 300-run budget is spent simulating them and the campaign
//!   misses the bug, with `StaticPrune::Skip` the budget is spent on capable
//!   tests only and the campaign both finds the bug and finishes faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_analysis::{classify, run_lints_on, ClassifyBounds, Dataflow};
use mcversi_core::lowering::lower;
use mcversi_core::{run_campaign, CampaignConfig, GeneratorKind, McVerSiConfig, StaticPrune};
use mcversi_mcm::ModelKind;
use mcversi_sim::{Bug, CoreStrength};
use mcversi_testgen::{OperationBias, RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for &ops in &[32usize, 128, 512] {
        let mut params = TestGenParams::small()
            .with_threads(4)
            .with_test_size(ops)
            .with_test_memory(1024);
        params.bias = OperationBias::relaxed_default();
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(5));
        let program = lower(&test);
        let df = Dataflow::new(&program);

        group.bench_with_input(
            BenchmarkId::new("dataflow", format!("{ops}ops")),
            &program,
            |bench, program| bench.iter(|| Dataflow::new(program).accesses().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("lints", format!("{ops}ops")),
            &df,
            |bench, df| bench.iter(|| run_lints_on(df).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("classify", format!("{ops}ops")),
            &df,
            |bench, df| bench.iter(|| classify(df, &ClassifyBounds::default()).len()),
        );
    }
    group.finish();
}

/// The demonstration cell: random generation hunting `Bug::SqNoDataDep` on
/// the relaxed core under ARMish, 300 test-runs of size 32.
fn demo_cell(prune: StaticPrune) -> CampaignConfig {
    let mut mcversi = McVerSiConfig::small().with_test_size(32).with_iterations(4);
    mcversi = mcversi.retarget(ModelKind::Armish);
    mcversi.system.core_strength = CoreStrength::Relaxed;
    CampaignConfig::new(
        GeneratorKind::McVerSiRand,
        Some(Bug::SqNoDataDep),
        mcversi,
        300,
        Duration::from_secs(180),
    )
    .with_prune(prune)
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune");
    group.sample_size(10);
    for (label, prune) in [("off", StaticPrune::Off), ("skip", StaticPrune::Skip)] {
        group.bench_function(BenchmarkId::new("sq_no_data_dep", label), |bench| {
            bench.iter(|| {
                let result = run_campaign(&demo_cell(prune), 3);
                // Campaign shape at this cell and seed: `skip` finds the bug
                // within the budget, `off` exhausts it without finding.
                (result.found, result.found_at_run, result.pruned)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes, bench_prune);
criterion_main!(benches);
