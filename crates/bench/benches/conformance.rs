//! Criterion bench: vector-clock first-pass checking vs. per-execution
//! checking.
//!
//! The vc first pass (`CheckingMode::Vc`) certifies most observed executions
//! in polynomial time and only falls back to the axiomatic `Checker::check`
//! on a vc violation or abstention (plus signature deduplication for repeated
//! outcomes).  The preamble pins the checker-invocation reduction (>= 2x,
//! measured through the `mcm.checks` telemetry counter) on a repeated-litmus
//! TSO campaign and reports the end-to-end speedup; the criterion groups then
//! measure both modes' full campaign wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use mcversi_core::McVerSiConfig;
use mcversi_core::{run_campaign, CampaignConfig, CampaignResult, CheckingMode, GeneratorKind};
use mcversi_telemetry::Stopwatch;
use std::time::Duration;

/// A heavy repeated-test campaign: every staged litmus test runs for 30
/// iterations, so the first pass has plenty of valid executions to certify.
fn campaign(checking: CheckingMode) -> CampaignConfig {
    let mcversi = McVerSiConfig::small()
        .with_test_size(32)
        .with_iterations(30);
    CampaignConfig::new(
        GeneratorKind::DiyLitmus,
        None,
        mcversi,
        12,
        Duration::from_secs(600),
    )
    .with_checking(checking)
}

fn checker_calls(result: &CampaignResult) -> u64 {
    *result
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .counters
        .get("mcm.checks")
        .unwrap_or(&0)
}

fn bench_conformance(c: &mut Criterion) {
    // Preamble: one instrumented pass per mode pins the reduction factor the
    // acceptance criterion asks for and reports the end-to-end speedup.
    let watch = Stopwatch::start();
    let per = run_campaign(&campaign(CheckingMode::PerExec).with_metrics(0), 5);
    let per_wall = watch.elapsed();
    let watch = Stopwatch::start();
    let vc = run_campaign(&campaign(CheckingMode::Vc).with_metrics(0), 5);
    let vc_wall = watch.elapsed();
    let (per_checks, vc_checks) = (checker_calls(&per), checker_calls(&vc));
    let dedup = vc.dedup.expect("vc mode reports dedup stats");
    eprintln!(
        "vc-first checking: {per_checks} -> {vc_checks} Checker::check calls \
         ({:.1}x fewer), {} vc-certified of {} executions; \
         end-to-end {:?} -> {:?} ({:.2}x)",
        per_checks as f64 / vc_checks.max(1) as f64,
        dedup.oracle_valid,
        dedup.executions,
        per_wall,
        vc_wall,
        per_wall.as_secs_f64() / vc_wall.as_secs_f64().max(1e-9),
    );
    assert!(
        per_checks >= 2 * vc_checks.max(1),
        "the >=2x checker-invocation reduction regressed: \
         per_exec={per_checks} vc={vc_checks}"
    );

    let mut group = c.benchmark_group("conformance");
    group.sample_size(10);
    for (name, mode) in [
        ("per_exec", CheckingMode::PerExec),
        ("vc", CheckingMode::Vc),
    ] {
        let cfg = campaign(mode);
        group.bench_function(name, |b| b.iter(|| run_campaign(&cfg, 7)));
    }
    group.finish();
}

criterion_group!(benches, bench_conformance);
criterion_main!(benches);
