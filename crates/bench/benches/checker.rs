//! Criterion bench: the axiomatic checker's cost per candidate execution.
//!
//! The paper reports (§5.2.1) that checking takes 30–40 % of the total
//! wall-clock time for 1k-operation tests; this bench measures the checker in
//! isolation for several execution sizes so that ratio can be compared against
//! the simulator bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcversi_mcm::checker::Checker;
use mcversi_mcm::execution::{CandidateExecution, ExecutionBuilder};
use mcversi_mcm::model::tso::Tso;
use mcversi_mcm::{Address, ProcessorId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a racy but valid execution with `ops_per_thread` operations on each
/// of `threads` threads over `locations` addresses.
fn build_execution(threads: u32, ops_per_thread: u32, locations: u64) -> CandidateExecution {
    let mut rng = StdRng::seed_from_u64(42);
    let mut b = ExecutionBuilder::new();
    let mut last_write: Vec<Option<(mcversi_mcm::EventId, u64)>> = vec![None; locations as usize];
    let mut next_value = 1u64;
    for t in 0..threads {
        for _ in 0..ops_per_thread {
            let loc = rng.gen_range(0..locations);
            let addr = Address(0x1000 + loc * 8);
            if rng.gen_bool(0.45) {
                let w = b.write(ProcessorId(t), addr, Value(next_value));
                match last_write[loc as usize] {
                    Some((prev, _)) => b.coherence(prev, w),
                    None => b.coherence_after_initial(w),
                }
                last_write[loc as usize] = Some((w, next_value));
                next_value += 1;
            } else {
                match last_write[loc as usize] {
                    Some((w, v)) => {
                        let r = b.read(ProcessorId(t), addr, Value(v));
                        b.reads_from(w, r);
                    }
                    None => {
                        let r = b.read(ProcessorId(t), addr, Value(0));
                        b.reads_from_initial(r);
                    }
                }
            }
        }
    }
    b.build()
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for &(threads, ops) in &[(4u32, 32u32), (8, 64), (8, 125)] {
        let exec = build_execution(threads, ops, 16);
        let total = threads * ops;
        group.bench_with_input(
            BenchmarkId::new("tso_check", total),
            &exec,
            |bench, exec| {
                let checker = Checker::new(&Tso);
                bench.iter(|| {
                    let verdict = checker.check(exec);
                    assert!(verdict.is_valid());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
