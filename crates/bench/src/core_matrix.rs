//! Pinned (core strength × model) bug-detectability matrix.
//!
//! The companion of [`crate::matrix`]: where that module pins *checker*
//! verdicts on hand-built executions, this one pins what the whole
//! simulate-and-check flow detects when a directed test program is driven at
//! an injected bug under every combination of simulated core strength and
//! target model.  It is the end-to-end encoding of the paper's point extended
//! across the (model × core) plane:
//!
//! * the **correct design** is flagged exactly when the core is weaker than
//!   the model (strong core under SC; relaxed core under SC and TSO) and is
//!   clean under every model it was built for;
//! * every **dependency-ordering bug** ([`Bug::DEPENDENCY`]) is caught on the
//!   relaxed core by the models that give the violated ordering semantics,
//!   and is *invisible* on the strong core under every model — the strong
//!   pipeline's invalidation squash and in-order retirement mask the
//!   injection, which is precisely the implementation/model gap TriCheck
//!   describes;
//! * `Fence+no-acquire` is additionally invisible to POWERish/RMO even on the
//!   relaxed core, because only the ARM-ish model gives acquire fences
//!   ordering semantics: detectability is a property of the *pair*, not of
//!   the bug.
//!
//! The directed programs interleave several instances of the classic shapes
//! with cache flushes so every instance races through the memory system
//! rather than hitting in the L1 — the timing windows the short litmus forms
//! only hit after many more executions.

use mcversi_core::{ScenarioGrid, ScenarioSpec, TestRunner};
use mcversi_mcm::{Address, ModelKind};
use mcversi_sim::{Bug, BugConfig, CoreStrength};
use mcversi_testgen::{Gene, Op, OpKind, Test};

fn gene(pid: u32, kind: OpKind, addr: Address) -> Gene {
    Gene {
        pid,
        op: Op::new(kind, addr),
    }
}

/// `MP+mfence+<reader>`: writer publishes data then flag behind a full
/// fence; the reader picks the flag up through `reader_tail` (an
/// address-dependent load, or an acquire fence and a plain load).
///
/// The reader flushes the *flag* each instance (so every flag read races
/// through the memory system) but deliberately keeps the *data* line cached:
/// the stale data then sits in the reader's L1 as an instant hit — the
/// Peekaboo window.  The strong core squashes the hit when the writer's
/// invalidation arrives; the relaxed core keeps it, and only the
/// dependency/acquire stall stands between the stale value and the weak
/// outcome.
fn mp_mfence(reader_tail: &[OpKind], instances: usize) -> Test {
    let x = Address(0x10_0000);
    let y = Address(0x10_0040);
    let mut genes = Vec::new();
    for _ in 0..instances {
        genes.push(gene(0, OpKind::Write, x));
        genes.push(gene(0, OpKind::Fence, Address(0)));
        genes.push(gene(0, OpKind::Write, y));
        genes.push(gene(1, OpKind::Read, y));
        for &kind in reader_tail {
            let addr = match kind {
                OpKind::Read | OpKind::ReadAddrDp => x,
                _ => Address(0),
            };
            genes.push(gene(1, kind, addr));
        }
        genes.push(gene(1, OpKind::CacheFlush, y));
    }
    Test::new(genes, 2)
}

/// `LB+deps`: both threads load one location and then write the other
/// through a dependent store; each instance uses a fresh address pair so the
/// instances race independently.  The weak outcome (both loads observe the
/// other thread's store) is a causality cycle the relaxed models' no-thin-air
/// axiom forbids — reachable only when a dependent store commits before its
/// source load performs.
fn lb_dep(write_kind: OpKind, instances: usize) -> Test {
    let mut genes = Vec::new();
    for i in 0..instances as u64 {
        let x = Address(0x20_0000 + i * 0x80);
        let y = Address(0x20_0040 + i * 0x80);
        genes.push(gene(0, OpKind::Read, x));
        genes.push(gene(0, write_kind, y));
        genes.push(gene(1, OpKind::Read, y));
        genes.push(gene(1, write_kind, x));
    }
    Test::new(genes, 2)
}

/// The correct-design probe: overlapping store-buffering and message-passing
/// shapes.  SB catches any store buffer at all (strong and relaxed cores
/// violate SC); MP catches the relaxed core's load/store reordering under
/// TSO.
fn correct_design_probe() -> Test {
    let a = |i: u64| Address(0x30_0000 + i * 0x40);
    // SB: W x; R y || W y; R x.
    let mut genes = vec![
        gene(0, OpKind::Write, a(0)),
        gene(0, OpKind::Read, a(1)),
        gene(1, OpKind::Write, a(1)),
        gene(1, OpKind::Read, a(0)),
    ];
    // Overlapping MP chains: one writer stream, reversed reader.
    for i in 2..6 {
        genes.push(gene(0, OpKind::Write, a(i)));
    }
    for i in (2..6).rev() {
        genes.push(gene(1, OpKind::Read, a(i)));
    }
    for i in 0..6 {
        genes.push(gene(1, OpKind::CacheFlush, a(i)));
    }
    Test::new(genes, 2)
}

/// The directed programs used to probe a bug (or the correct design).
pub fn probe_programs(bug: Option<Bug>) -> Vec<Test> {
    match bug {
        None => vec![correct_design_probe()],
        Some(Bug::LqNoAddrDep) => vec![mp_mfence(&[OpKind::ReadAddrDp], 12)],
        Some(Bug::FenceNoAcquire) => vec![mp_mfence(&[OpKind::FenceAcquire, OpKind::Read], 12)],
        Some(Bug::SqNoDataDep) => vec![lb_dep(OpKind::WriteDataDp, 6)],
        Some(Bug::SqNoCtrlDep) => vec![lb_dep(OpKind::WriteCtrlDp, 6)],
        Some(other) => panic!("no directed probe for {other}"),
    }
}

/// The declarative description of one probe cell: the scaled-down system at
/// the given (core strength × model) coordinates, 3 executions per test-run.
pub fn probe_spec(bug: Option<Bug>, core: CoreStrength, model: ModelKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::small()
        .bug(bug)
        .model(model)
        .core_strength(core);
    spec.iterations = 3;
    spec.cores = 4;
    spec
}

/// Runs up to `runs` test-runs of the directed probe for `bug` on a system
/// with the given core strength, checking against `model`; returns `true` as
/// soon as any run reports a bug.
pub fn detect(
    bug: Option<Bug>,
    core: CoreStrength,
    model: ModelKind,
    runs: usize,
    seed: u64,
) -> bool {
    detect_cell(&probe_spec(bug, core, model).seed(seed), runs)
}

/// Runs the directed probe described by a [`ScenarioSpec`] cell (bug, core
/// strength, model and seed are all read from the spec).
pub fn detect_cell(cell: &ScenarioSpec, runs: usize) -> bool {
    let bugs = cell.bug.map(BugConfig::single).unwrap_or_default();
    let mut runner = TestRunner::new(cell.mcversi(), bugs);
    let programs = probe_programs(cell.bug);
    (0..runs).any(|i| {
        runner
            .run_test(&programs[i % programs.len()])
            .verdict
            .is_bug()
    })
}

/// One pinned row: a bug (or the correct design), the models probed, and the
/// expected detection outcome per (core strength, model).
#[derive(Debug)]
pub struct CoreMatrixRow {
    /// The injected bug, or `None` for the correct design.
    pub bug: Option<Bug>,
    /// The target models probed, one column each.
    pub models: &'static [ModelKind],
    /// Expected detection per model on the strong core.
    pub strong: &'static [bool],
    /// Expected detection per model on the relaxed core.
    pub relaxed: &'static [bool],
}

/// The pinned matrix.
///
/// The correct design is probed under every model; the dependency bugs are
/// probed under the three dependency-ordered models (their SC/TSO columns
/// would be dominated by the relaxed core's architectural weakness rather
/// than the injected bug).
pub fn core_matrix_rows() -> Vec<CoreMatrixRow> {
    use ModelKind::*;
    const WEAK: &[ModelKind] = &[Armish, Powerish, Rmo];
    vec![
        CoreMatrixRow {
            bug: None,
            models: &[Sc, Tso, Armish, Powerish, Rmo],
            strong: &[true, false, false, false, false],
            relaxed: &[true, true, false, false, false],
        },
        CoreMatrixRow {
            bug: Some(Bug::LqNoAddrDep),
            models: WEAK,
            strong: &[false, false, false],
            relaxed: &[true, true, true],
        },
        CoreMatrixRow {
            bug: Some(Bug::SqNoDataDep),
            models: WEAK,
            strong: &[false, false, false],
            relaxed: &[true, true, true],
        },
        CoreMatrixRow {
            bug: Some(Bug::SqNoCtrlDep),
            models: WEAK,
            strong: &[false, false, false],
            relaxed: &[true, true, true],
        },
        CoreMatrixRow {
            bug: Some(Bug::FenceNoAcquire),
            models: WEAK,
            strong: &[false, false, false],
            // Only the ARM-ish model gives acquire fences semantics, so only
            // it can see the bug: detectability is a (bug, model) pair
            // property.
            relaxed: &[true, false, false],
        },
    ]
}

/// Runs every pinned cell and renders the matrix; returns
/// `(rendered table, mismatches)`.
///
/// `runs` bounds the test-run budget per cell (expected-found cells normally
/// stop after a handful).
pub fn run_core_matrix(runs: usize) -> (String, usize) {
    use std::fmt::Write as _;
    let rows = core_matrix_rows();
    let label = |bug: Option<Bug>| {
        bug.map_or_else(
            || "correct design".to_string(),
            |b| b.paper_name().to_string(),
        )
    };
    let name_w = rows
        .iter()
        .map(|r| label(r.bug).len())
        .max()
        .unwrap_or(8)
        .max("Bug".len());
    let mut out = String::new();
    let mut mismatches = 0usize;
    for core in CoreStrength::ALL {
        let _ = writeln!(out, "core: {core}");
        for row in &rows {
            let _ = write!(out, "  {:<name_w$}", label(row.bug));
            let expectations = match core {
                CoreStrength::Strong => row.strong,
                CoreStrength::Relaxed => row.relaxed,
            };
            // One row of the sweep = one single-axis grid over the row's
            // models at this core strength.
            let cells = ScenarioGrid::new(probe_spec(row.bug, core, row.models[0]))
                .models(row.models.iter().copied())
                .cells();
            for (i, probe) in cells.iter().enumerate() {
                let got = detect_cell(&probe.clone().seed(7 + i as u64), runs);
                let cell = match (got, got == expectations[i]) {
                    (true, true) => "found",
                    (false, true) => "quiet",
                    (true, false) => "found!?",
                    (false, false) => "quiet!?",
                };
                if got != expectations[i] {
                    mismatches += 1;
                }
                let _ = write!(out, "  {}:{cell:<8}", probe.model);
            }
            let _ = writeln!(out);
        }
    }
    (out, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The end-to-end differential pin: every (bug × core × model) cell
    /// matches the expectation — each dependency bug is caught on the relaxed
    /// core under its models and masked everywhere on the strong core, and
    /// the correct design is flagged exactly when the core is weaker than
    /// the model.
    #[test]
    fn pinned_core_matrix_holds() {
        let (table, mismatches) = run_core_matrix(24);
        assert_eq!(mismatches, 0, "matrix:\n{table}");
        assert!(table.contains("LQ+no-addr-dep"));
    }

    /// The acceptance-criterion cell in isolation: `LQ+no-addr-dep` under
    /// ARMish is detected by the relaxed core and not by the strong one.
    #[test]
    fn addr_dep_bug_is_relaxed_core_only_under_armish() {
        assert!(detect(
            Some(Bug::LqNoAddrDep),
            CoreStrength::Relaxed,
            ModelKind::Armish,
            24,
            1,
        ));
        assert!(!detect(
            Some(Bug::LqNoAddrDep),
            CoreStrength::Strong,
            ModelKind::Armish,
            24,
            1,
        ));
    }
}
