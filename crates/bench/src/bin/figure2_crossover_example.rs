//! Regenerates paper Figure 2: a worked example of the selective crossover.
//!
//! Two two-thread parents are evaluated; Parent-1's fit-address set is
//! {a, b} and Parent-2's is {a, c}, as in the figure.  The binary prints both
//! parents, their fit addresses, and several children produced by the
//! selective crossover, showing that fit-address genes are preserved and slots
//! unselected in both parents are mutated.

use mcversi_core::ScenarioSpec;
use mcversi_mcm::Address;
use mcversi_testgen::ndt::NdtAnalysis;
use mcversi_testgen::{selective_crossover_mutate, Gene, Op, OpKind, Test};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gene(pid: u32, kind: OpKind, addr: Address) -> Gene {
    Gene {
        pid,
        op: Op::new(kind, addr),
    }
}

fn show(label: &str, test: &Test, names: &[(Address, char)]) {
    println!("{label}:");
    for (pid, ops) in test.threads().iter().enumerate() {
        print!("  P{pid}:");
        for op in ops {
            let name = names
                .iter()
                .find(|(a, _)| *a == op.addr)
                .map(|(_, c)| *c)
                .unwrap_or('?');
            let k = match op.kind {
                OpKind::Read | OpKind::ReadAddrDp => 'R',
                OpKind::Write => 'W',
                OpKind::ReadModifyWrite => 'U',
                _ => '.',
            };
            print!(" {k}[{name}]");
        }
        println!();
    }
}

fn main() {
    println!("=== Figure 2: crossover and mutation example ===\n");
    let a = Address(0x10_0000);
    let b = Address(0x10_0010);
    let c = Address(0x10_0020);
    let d = Address(0x10_0030);
    let names = [(a, 'a'), (b, 'b'), (c, 'c'), (d, 'd')];

    // Two parents with two threads each (8 genes, constant size).
    let parent1 = Test::new(
        vec![
            gene(0, OpKind::Write, a),
            gene(1, OpKind::Read, a),
            gene(0, OpKind::Write, b),
            gene(1, OpKind::Read, b),
            gene(0, OpKind::Write, d),
            gene(1, OpKind::Read, d),
            gene(0, OpKind::Write, c),
            gene(1, OpKind::Read, c),
        ],
        2,
    );
    let parent2 = Test::new(
        vec![
            gene(0, OpKind::Write, c),
            gene(1, OpKind::Read, c),
            gene(0, OpKind::Write, a),
            gene(1, OpKind::Read, a),
            gene(0, OpKind::Write, b),
            gene(1, OpKind::Read, b),
            gene(0, OpKind::Write, d),
            gene(1, OpKind::Read, d),
        ],
        2,
    );

    // Step 1: evaluation yields fitaddrs {a, b} for Parent-1 and {a, c} for
    // Parent-2 (as in the figure).
    let mut analysis1 = NdtAnalysis::empty();
    analysis1.ndt = 2.0;
    analysis1.fitaddrs = [a, b].into_iter().collect();
    let mut analysis2 = NdtAnalysis::empty();
    analysis2.ndt = 2.0;
    analysis2.fitaddrs = [a, c].into_iter().collect();

    show("Parent-1 (fitaddrs = {a, b})", &parent1, &names);
    show("Parent-2 (fitaddrs = {a, c})", &parent2, &names);
    println!();

    // Step 2/3: crossover can produce several children; unselected slots in
    // both parents are mutated (addresses biased towards the fit union).
    // The generation parameters come from a two-core, eight-gene scenario.
    let mut spec = ScenarioSpec::small();
    spec.cores = 2;
    spec.test_size = 8;
    spec.test_memory_bytes = 256;
    let mut params = spec.testgen();
    params.p_bfa = 0.5;
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = selective_crossover_mutate(
            &parent1, &parent2, &analysis1, &analysis2, &params, &mut rng,
        );
        show(&format!("Child (seed {seed})"), &child, &names);
        let kept_fit = child
            .genes()
            .iter()
            .filter(|g| {
                g.op.is_memop()
                    && (analysis1.fitaddrs.contains(&g.op.addr)
                        || analysis2.fitaddrs.contains(&g.op.addr))
            })
            .count();
        println!(
            "  -> {kept_fit}/{} genes touch a fit address\n",
            child.len()
        );
    }
}
