//! Regenerates paper Table 6: maximum total transition coverage per generator
//! configuration for the MESI and TSO-CC protocols.
//!
//! Coverage campaigns run on the *correct* (bug-free) design; the metric is
//! the fraction of the protocol's transition universe covered cumulatively by
//! the whole campaign (the paper's "maximum total transition coverage observed
//! across all simulation runs").  The sweep is one declarative
//! [`mcversi_core::ScenarioGrid`] — protocols × the seven
//! generator columns — and sample progress streams live through a
//! [`mcversi_core::ProgressSink`] on stderr.

use mcversi_bench::{banner, metrics_summary, table_columns, write_artifact};
use mcversi_core::report::CoverageRow;
use mcversi_core::scenario::jsonl_sink_from_env;
use mcversi_core::sink::ProgressSink;
use mcversi_core::{ScenarioGrid, ScenarioSpec};
use mcversi_sim::ProtocolKind;
use std::collections::BTreeMap;

fn main() {
    let base = ScenarioSpec::from_env().seed(9000);
    banner("Table 6: maximum total transition coverage", &base);
    let grid = ScenarioGrid::new(base)
        .protocols([ProtocolKind::Mesi, ProtocolKind::TsoCc])
        .correct_design()
        .generator_columns(table_columns());
    let column_labels = grid.column_labels();

    let mut jsonl = jsonl_sink_from_env();
    let mut per_protocol: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut protocol_order: Vec<String> = Vec::new();
    let mut all_raw = Vec::new();
    for cell in grid.cells() {
        let protocol = cell.protocol.name().to_string();
        if !protocol_order.contains(&protocol) {
            println!("protocol {protocol} ...");
            protocol_order.push(protocol.clone());
        }
        let label = cell.display_label();
        let mut progress = ProgressSink::stderr().with_prefix(&format!("[{protocol}/{label}]"));
        let results = match &mut jsonl {
            Some(sink) => cell.run(&mut (&mut progress, sink)),
            None => cell.run(&mut progress),
        };
        let max_cov = results
            .iter()
            .map(|r| r.max_total_coverage)
            .fold(0.0f64, f64::max);
        println!("  {:<22} {:.1}%", label, max_cov * 100.0);
        per_protocol
            .entry(protocol)
            .or_default()
            .insert(label, max_cov);
        all_raw.extend(results);
    }

    let rows: Vec<CoverageRow> = protocol_order
        .iter()
        .map(|protocol| CoverageRow {
            protocol: protocol.clone(),
            coverage: per_protocol.remove(protocol).unwrap_or_default(),
        })
        .collect();

    println!();
    print!("{:<8}", "Protocol");
    for c in &column_labels {
        print!("  {c:>12}");
    }
    println!();
    for row in &rows {
        println!("{}", row.render(&column_labels));
    }

    if let Some(line) = metrics_summary(&all_raw) {
        println!("\n{line}");
    }
    if let Some(sink) = &jsonl {
        println!("\nevent stream: {} JSONL lines", sink.lines());
    }
    if let Ok(path) = write_artifact("table6_structural_coverage.json", &rows) {
        println!("\nartifact: {}", path.display());
    }
}
