//! Regenerates paper Table 6: maximum total transition coverage per generator
//! configuration for the MESI and TSO-CC protocols.
//!
//! Coverage campaigns run on the *correct* (bug-free) design; the metric is
//! the fraction of the protocol's transition universe covered cumulatively by
//! the whole campaign (the paper's "maximum total transition coverage observed
//! across all simulation runs").

use mcversi_bench::{banner, table_columns, write_artifact, Scale};
use mcversi_core::campaign::run_samples;
use mcversi_core::report::CoverageRow;
use mcversi_sim::ProtocolKind;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    banner("Table 6: maximum total transition coverage", &scale);
    let columns = table_columns();
    let column_labels: Vec<String> = columns.iter().map(|(_, _, l)| l.clone()).collect();
    let mut rows = Vec::new();

    for protocol in [ProtocolKind::Mesi, ProtocolKind::TsoCc] {
        println!("protocol {} ...", protocol.name());
        let mut coverage = BTreeMap::new();
        for (generator, memory, label) in &columns {
            let mut cfg = scale.campaign(*generator, None, *memory);
            cfg.mcversi.system.protocol = protocol;
            let results = run_samples(&cfg, scale.samples, 9000);
            let max_cov = results
                .iter()
                .map(|r| r.max_total_coverage)
                .fold(0.0f64, f64::max);
            println!("  {:<22} {:.1}%", label, max_cov * 100.0);
            coverage.insert(label.clone(), max_cov);
        }
        rows.push(CoverageRow {
            protocol: protocol.name().to_string(),
            coverage,
        });
    }

    println!();
    print!("{:<8}", "Protocol");
    for c in &column_labels {
        print!("  {c:>12}");
    }
    println!();
    for row in &rows {
        println!("{}", row.render(&column_labels));
    }

    if let Ok(path) = write_artifact("table6_structural_coverage.json", &rows) {
        println!("\nartifact: {}", path.display());
    }
}
