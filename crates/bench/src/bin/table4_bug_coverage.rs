//! Regenerates paper Table 4 — bug coverage per generator configuration —
//! across target consistency models and simulated core strengths.
//!
//! The sweep is one declarative [`mcversi_core::ScenarioGrid`]: the base spec and the model
//! / core-strength axes come from the environment (`MCVERSI_*`, including a
//! JSON base spec via `MCVERSI_SPEC`; see `mcversi_core::scenario`), the bug
//! axis is the extended corpus restricted to observable (bug × core) pairs,
//! and the generator axis is the paper's seven columns.  Every cell runs
//! `samples` campaign samples; when `MCVERSI_JSONL` is set,
//! every campaign event additionally streams to a JSONL log
//! ([`mcversi_core::JsonlSink`]) while the tables accumulate.
//!
//! The (model × core) sweep is the cross-model extension of the paper's
//! TSO-only table: under SC the (TSO-correct) design itself is flagged
//! immediately — the hardware is weaker than the model — while under the
//! relaxed models the TSO bugs progressively disappear, because the weak
//! executions they produce become architecturally allowed.  Sweeping the
//! *relaxed* core adds the other half of the picture: the dependency-ordering
//! bug corpus (`Bug::DEPENDENCY`) only exists in the relaxed pipeline's
//! stalls, so those rows light up under ARMish/POWERish/RMO on the relaxed
//! core and are provably invisible on the strong one.  The run starts with
//! two pinned matrices: the checker-level litmus verdict matrix
//! (`crates/bench/src/matrix.rs`) and the end-to-end (core × model)
//! bug-detectability matrix (`crates/bench/src/core_matrix.rs`).

use mcversi_bench::core_matrix::run_core_matrix;
use mcversi_bench::matrix::{render_matrix, verify_enumerated_corpus};
use mcversi_bench::{banner, metrics_summary, table_columns, write_artifact};
use mcversi_core::report::{aggregate_cell, BugCoverageTable};
use mcversi_core::scenario::jsonl_sink_from_env;
use mcversi_core::sink::NullSink;
use mcversi_core::{fabric_from_env, grid_from_env, CampaignResult, ScenarioSpec, SeedPolicy};
use mcversi_fabric::{locate_worker, run_grid, FabricOptions, WorkerFault};
use mcversi_sim::Bug;

fn main() {
    let grid = grid_from_env()
        .generator_columns(table_columns())
        .bugs(Bug::ALL_EXTENDED)
        .observable_bugs_only()
        .seed_policy(SeedPolicy::table4());
    banner(
        "Table 4: bug coverage (per model and core strength)",
        grid.base(),
    );

    println!("Cross-model litmus verdict matrix (canonical weak outcomes):");
    let (matrix, mismatches) = render_matrix();
    println!("{matrix}");
    if mismatches > 0 {
        eprintln!("error: {mismatches} verdicts deviate from the pinned expectations");
        std::process::exit(1);
    }
    println!("all verdicts match the pinned expectations\n");

    // The corpus-wide independent oracle: every enumerated test × model, the
    // closed-form cycle verdict against the axiomatic checker on the
    // canonical weak-outcome execution.  Bounds follow the corpus the cells
    // will actually run (`MCVERSI_LITMUS`); a handpicked-corpus run skips
    // the sweep — its cells never touch the enumerated tests.
    match grid.base().litmus_corpus().bounds() {
        None => println!("litmus corpus: handpicked (enumerated-corpus cross-check skipped)\n"),
        Some(bounds) => {
            println!("Enumerated corpus vs checker (independent oracle cross-check):");
            let (summary, corpus_mismatches) = verify_enumerated_corpus(&bounds);
            println!("{summary}");
            if corpus_mismatches > 0 {
                eprintln!("error: {corpus_mismatches} enumerated verdicts contradict the checker");
                std::process::exit(1);
            }
            println!("oracle and checker agree on the whole corpus\n");
        }
    }

    println!("(core strength × model) bug-detectability matrix (directed probes):");
    let (core_matrix, core_mismatches) = run_core_matrix(24);
    println!("{core_matrix}");
    if core_mismatches > 0 {
        eprintln!("error: {core_mismatches} cells deviate from the pinned expectations");
        std::process::exit(1);
    }
    println!("all cells match the pinned expectations\n");

    let mut jsonl = jsonl_sink_from_env();
    let column_labels = grid.column_labels();
    let cells = grid.cells();
    // With MCVERSI_FABRIC set, the whole sweep runs through the multi-process
    // coordinator up front; the per-cell loop below then only aggregates.
    let fabric_results = fabric_from_env().map(|env| run_fabric_sweep(&cells, &env, &mut jsonl));
    let mut all_raw = Vec::new();
    // (core, model) groups arrive in grid order; tables render when a group
    // closes so long sweeps report incrementally.
    let mut open_group: Option<(String, String, BugCoverageTable)> = None;
    let mut current_bug: Option<Option<Bug>> = None;

    for (cell_idx, cell) in cells.iter().enumerate() {
        let group_key = (cell.core_strength.to_string(), cell.model.to_string());
        match &open_group {
            Some((core, model, _)) if (core, model) == (&group_key.0, &group_key.1) => {}
            _ => {
                if let Some(group) = open_group.take() {
                    render_group(group);
                }
                println!(
                    "=== core: {}, target model: {} ===",
                    group_key.0, group_key.1
                );
                open_group = Some((
                    group_key.0,
                    group_key.1,
                    BugCoverageTable::new(column_labels.clone()),
                ));
                current_bug = None;
            }
        }
        if current_bug != Some(cell.bug) {
            let bug = cell
                .bug
                .expect("the table-4 bug axis has no correct-design cells");
            println!("bug {bug} ...");
            current_bug = Some(cell.bug);
        }

        let label = cell.display_label();
        let results = match &fabric_results {
            Some(all) => all[cell_idx].1.clone(),
            None => match &mut jsonl {
                Some(sink) => cell.run(sink),
                None => cell.run(&mut NullSink),
            },
        };
        let table_cell = aggregate_cell(cell.generator, &label, &results, cell.max_test_runs);
        println!(
            "  {:<22} found {}/{} (mean time {:.2})",
            label, table_cell.found, table_cell.samples, table_cell.mean_time
        );
        all_raw.extend(results);
        let bug = cell.bug.expect("checked above");
        if let Some((_, _, table)) = &mut open_group {
            table.insert(bug, &label, table_cell);
        }
    }
    if let Some(group) = open_group.take() {
        render_group(group);
    }

    if let Some(line) = metrics_summary(&all_raw) {
        println!("{line}");
    }
    if let Some(sink) = &jsonl {
        println!("event stream: {} JSONL lines", sink.lines());
    }
    if let Ok(path) = write_artifact("table4_raw_results.json", &all_raw) {
        println!("raw results: {}", path.display());
    }
}

/// Runs the whole sweep through the distributed-fabric coordinator
/// (`MCVERSI_FABRIC` worker processes, optional `MCVERSI_JOURNAL`
/// checkpoint/resume and `MCVERSI_FABRIC_FAULT` fault injection), returning
/// per-cell results in grid order.  Any fabric failure aborts the run with
/// exit status 4 — the journal keeps its progress for a later resume.
fn run_fabric_sweep(
    cells: &[ScenarioSpec],
    env: &mcversi_core::FabricEnv,
    jsonl: &mut Option<mcversi_core::JsonlSink<std::fs::File>>,
) -> Vec<(ScenarioSpec, Vec<CampaignResult>)> {
    let Some(worker) = locate_worker() else {
        eprintln!(
            "error: mcversi-work binary not found next to this executable \
             (build it with `cargo build -p mcversi-fabric --bin mcversi-work`)"
        );
        std::process::exit(4);
    };
    let mut options = FabricOptions::new(worker);
    options.workers = env.workers;
    options.journal = env.journal.clone();
    options.max_redispatch = env.max_redispatch;
    if let Some(raw) = &env.fault {
        match WorkerFault::parse(raw) {
            Some(fault) => options.fault = Some(fault),
            None => {
                eprintln!("error: unparseable MCVERSI_FABRIC_FAULT `{raw}`");
                std::process::exit(4);
            }
        }
    }
    println!(
        "distributed fabric: {} worker(s){}{}",
        options.workers,
        match &options.journal {
            Some(path) => format!(", journal {path}"),
            None => String::new(),
        },
        match &options.fault {
            Some(fault) => format!(", injected fault {}", fault.spec()),
            None => String::new(),
        },
    );
    let report = match jsonl {
        Some(sink) => run_grid(cells, &options, sink),
        None => run_grid(cells, &options, &mut NullSink),
    };
    match report {
        Ok(report) => {
            println!(
                "fabric: {} dispatch(es), {} stolen, {} re-dispatched, \
                 {} journaled sample(s) skipped{}\n",
                report.stats.dispatched,
                report.stats.stolen,
                report.stats.redispatched,
                report.stats.resume_skipped,
                if report.resumed { " (resumed)" } else { "" },
            );
            report.cells
        }
        Err(e) => {
            eprintln!("error: fabric campaign failed: {e}");
            std::process::exit(4);
        }
    }
}

/// Renders one finished (core, model) group and writes its artifact.
fn render_group((core, model, table): (String, String, BugCoverageTable)) {
    println!();
    println!("{}", table.render());
    println!(
        "'N (t)' = found by N samples, mean normalised time t; 'NF' = not found within the budget."
    );
    let summary = table.summary();
    println!("\n[{core}/{model}] all-bugs summary (found samples, mean normalised time):");
    for (col, (found, time)) in &summary {
        println!("  {col:<22} {found:>3} ({time:.2})");
    }
    println!();

    let artifact = format!("table4_bug_coverage_{}_{}.json", core, model.to_lowercase());
    if let Ok(path) = write_artifact(&artifact, &table) {
        println!("artifact: {}", path.display());
    }
}
