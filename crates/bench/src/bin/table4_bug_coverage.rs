//! Regenerates paper Table 4: bug coverage per generator configuration.
//!
//! For every studied bug and every generator configuration (McVerSi-ALL,
//! McVerSi-Std.XO and McVerSi-RAND at 1 KB and 8 KB test memory, plus
//! diy-litmus), the binary runs `MCVERSI_SAMPLES` campaign samples and reports
//! how many found the bug and the mean normalised time to find it (fraction of
//! the test-run budget; the paper reports wall-clock hours of a 24-hour
//! budget).  See `crates/bench/src/experiment.rs` for the scaling knobs and
//! EXPERIMENTS.md for the comparison against the paper's numbers.

use mcversi_bench::{banner, table_columns, write_artifact, Scale};
use mcversi_core::campaign::run_samples;
use mcversi_core::report::{aggregate_cell, BugCoverageTable};
use mcversi_sim::Bug;

fn main() {
    let scale = Scale::from_env();
    banner("Table 4: bug coverage", &scale);
    let columns = table_columns();
    let mut table = BugCoverageTable::new(columns.iter().map(|(_, _, l)| l.clone()).collect());
    let mut raw = Vec::new();

    for &bug in Bug::ALL.iter() {
        println!("bug {bug} ...");
        for (generator, memory, label) in &columns {
            let cfg = scale.campaign(*generator, Some(bug), *memory);
            let results = run_samples(&cfg, scale.samples, 1000 + bug as u64 * 100);
            let cell = aggregate_cell(*generator, label, &results, scale.test_runs);
            println!(
                "  {:<22} found {}/{} (mean time {:.2})",
                label, cell.found, cell.samples, cell.mean_time
            );
            raw.extend(results);
            table.insert(bug, label, cell);
        }
    }

    println!();
    println!("{}", table.render());
    println!(
        "'N (t)' = found by N samples, mean normalised time t; 'NF' = not found within the budget."
    );
    let summary = table.summary();
    println!("\nAll-bugs summary (found samples, mean normalised time):");
    for (col, (found, time)) in &summary {
        println!("  {col:<22} {found:>3} ({time:.2})");
    }

    if let Ok(path) = write_artifact("table4_bug_coverage.json", &table) {
        println!("\nartifact: {}", path.display());
    }
    if let Ok(path) = write_artifact("table4_raw_results.json", &raw) {
        println!("raw results: {}", path.display());
    }
}
