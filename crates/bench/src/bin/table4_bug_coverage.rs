//! Regenerates paper Table 4 — bug coverage per generator configuration —
//! across target consistency models and simulated core strengths.
//!
//! For every core strength (`MCVERSI_CORES`, default `strong`; pass
//! `strong,relaxed` or `all` to sweep both), every target model
//! (`MCVERSI_MODELS`, default `SC,TSO,ARMish,RMO`), every studied bug and
//! every generator configuration (McVerSi-ALL, McVerSi-Std.XO and
//! McVerSi-RAND at 1 KB and 8 KB test memory, plus diy-litmus), the binary
//! runs `MCVERSI_SAMPLES` campaign samples and reports how many found the bug
//! and the mean normalised time to find it (fraction of the test-run budget;
//! the paper reports wall-clock hours of a 24-hour budget).  See
//! `crates/bench/src/experiment.rs` for the scaling knobs and EXPERIMENTS.md
//! for the comparison against the paper's numbers.
//!
//! The (model × core) sweep is the cross-model extension of the paper's
//! TSO-only table: under SC the (TSO-correct) design itself is flagged
//! immediately — the hardware is weaker than the model — while under the
//! relaxed models the TSO bugs progressively disappear, because the weak
//! executions they produce become architecturally allowed.  Sweeping the
//! *relaxed* core adds the other half of the picture: the dependency-ordering
//! bug corpus (`Bug::DEPENDENCY`) only exists in the relaxed pipeline's
//! stalls, so those rows light up under ARMish/POWERish/RMO on the relaxed
//! core and are provably invisible on the strong one.  The run starts with
//! two pinned matrices: the checker-level litmus verdict matrix
//! (`crates/bench/src/matrix.rs`) and the end-to-end (core × model)
//! bug-detectability matrix (`crates/bench/src/core_matrix.rs`).

use mcversi_bench::core_matrix::run_core_matrix;
use mcversi_bench::matrix::render_matrix;
use mcversi_bench::{banner, table_columns, write_artifact, Scale};
use mcversi_core::campaign::run_samples;
use mcversi_core::report::{aggregate_cell, BugCoverageTable};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 4: bug coverage (per model and core strength)",
        &scale,
    );

    println!("Cross-model litmus verdict matrix (canonical weak outcomes):");
    let (matrix, mismatches) = render_matrix();
    println!("{matrix}");
    if mismatches > 0 {
        eprintln!("error: {mismatches} verdicts deviate from the pinned expectations");
        std::process::exit(1);
    }
    println!("all verdicts match the pinned expectations\n");

    println!("(core strength × model) bug-detectability matrix (directed probes):");
    let (core_matrix, core_mismatches) = run_core_matrix(24);
    println!("{core_matrix}");
    if core_mismatches > 0 {
        eprintln!("error: {core_mismatches} cells deviate from the pinned expectations");
        std::process::exit(1);
    }
    println!("all cells match the pinned expectations\n");

    let columns = table_columns();
    let mut all_raw = Vec::new();

    for (core_idx, &core) in scale.core_strengths.iter().enumerate() {
        let bugs = Scale::bugs_for_core(core);
        for (model_idx, &model) in scale.models.iter().enumerate() {
            println!("=== core: {core}, target model: {model} ===");
            let mut table =
                BugCoverageTable::new(columns.iter().map(|(_, _, l)| l.clone()).collect());

            for &bug in &bugs {
                println!("bug {bug} ...");
                for (generator, memory, label) in &columns {
                    let cfg = scale.campaign_cell(*generator, Some(bug), *memory, model, core);
                    let base_seed = 1000
                        + bug as u64 * 100
                        + model_idx as u64 * 10_000
                        + core_idx as u64 * 100_000;
                    let results = run_samples(&cfg, scale.samples, base_seed);
                    let cell = aggregate_cell(*generator, label, &results, scale.test_runs);
                    println!(
                        "  {:<22} found {}/{} (mean time {:.2})",
                        label, cell.found, cell.samples, cell.mean_time
                    );
                    all_raw.extend(results);
                    table.insert(bug, label, cell);
                }
            }

            println!();
            println!("{}", table.render());
            println!(
                "'N (t)' = found by N samples, mean normalised time t; 'NF' = not found within the budget."
            );
            let summary = table.summary();
            println!("\n[{core}/{model}] all-bugs summary (found samples, mean normalised time):");
            for (col, (found, time)) in &summary {
                println!("  {col:<22} {found:>3} ({time:.2})");
            }
            println!();

            let artifact = format!(
                "table4_bug_coverage_{}_{}.json",
                core.name(),
                model.name().to_lowercase()
            );
            if let Ok(path) = write_artifact(&artifact, &table) {
                println!("artifact: {}", path.display());
            }
        }
    }

    if let Ok(path) = write_artifact("table4_raw_results.json", &all_raw) {
        println!("raw results: {}", path.display());
    }
}
