//! Regenerates paper Table 2: the simulated system parameters.
//!
//! The printed configuration is derived from the paper-scale
//! [`mcversi_core::ScenarioSpec`] — the same declarative
//! description the campaign sweeps expand — rather than from a hand-built
//! config object.

use mcversi_core::ScenarioSpec;

fn main() {
    let cfg = ScenarioSpec::paper().system();
    println!("=== Table 2: system parameters ===");
    let cores = format!("{} (out-of-order)", cfg.num_cores);
    println!("{:<28} {}", "Core-count & frequency", cores);
    println!("{:<28} {}", "LSQ entries", cfg.lq_entries + cfg.sq_entries);
    println!("{:<28} {}", "ROB entries", cfg.rob_entries);
    let l1 = format!(
        "{}KB, {}B lines, {}-way",
        cfg.l1_bytes / 1024,
        cfg.line_bytes,
        cfg.l1_ways
    );
    println!("{:<28} {}", "L1 I+D-cache (private)", l1);
    println!("{:<28} {} cycles", "L1 hit latency", cfg.latency.l1_hit);
    let l2 = format!(
        "{}KB x {} tiles, {}B lines, {}-way",
        cfg.l2_bank_bytes / 1024,
        cfg.l2_banks,
        cfg.line_bytes,
        cfg.l2_ways
    );
    println!("{:<28} {}", "L2 cache (NUCA, shared)", l2);
    println!(
        "{:<28} {} to {} cycles",
        "L2 hit latency", cfg.latency.l2_min, cfg.latency.l2_max
    );
    println!(
        "{:<28} {} to {} cycles",
        "Memory latency", cfg.latency.mem_min, cfg.latency.mem_max
    );
    let network = format!("2D mesh, {} rows, {} nodes", cfg.mesh_rows, cfg.num_nodes());
    println!("{:<28} {}", "On-chip network", network);
    println!("{:<28} {}", "Coherence protocol", cfg.protocol.name());
    match mcversi_bench::write_artifact("table2_system_params.json", &cfg) {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
