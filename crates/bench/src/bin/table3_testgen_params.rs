//! Regenerates paper Table 3: the test generation parameters.
//!
//! The two printed columns (1 KB and 8 KB test memory) are the generator axis
//! of a declarative [`mcversi_core::ScenarioGrid`] over the
//! paper-scale base spec.

use mcversi_core::{GeneratorKind, ScenarioGrid, ScenarioSpec};

fn main() {
    println!("=== Table 3: test generation parameters ===");
    let grid = ScenarioGrid::new(ScenarioSpec::paper()).generator_columns([
        (GeneratorKind::McVerSiAll, 1024, None),
        (GeneratorKind::McVerSiAll, 8 * 1024, None),
    ]);
    for cell in grid.cells() {
        let p = cell.testgen();
        println!("--- Test memory {} KB ---", cell.test_memory_bytes / 1024);
        println!(
            "{:<28} {} operations (total across threads)",
            "Test size", p.test_size
        );
        println!(
            "{:<28} {} executions per test-run",
            "Iterations", p.iterations
        );
        println!(
            "{:<28} {} B (stride {} B, {} B partitions {} MB apart)",
            "Test memory",
            p.test_memory_bytes,
            p.stride_bytes,
            p.partition_bytes,
            p.partition_separation_bytes >> 20
        );
        let b = p.bias;
        println!(
            "{:<28} Read:{}% ReadAddrDp:{}% Write:{}% RMW:{}% CacheFlush:{}% Delay:{}%",
            "Operations:bias",
            b.read,
            b.read_addr_dp,
            b.write,
            b.read_modify_write,
            b.cache_flush,
            b.delay
        );
        println!("{:<28} {}", "Population size", p.population_size);
        println!("{:<28} {}", "Tournament size", p.tournament_size);
        println!(
            "{:<28} {}",
            "Mutation probability (PMUT)", p.mutation_probability
        );
        println!(
            "{:<28} {}",
            "Crossover probability", p.crossover_probability
        );
        println!("{:<28} {}", "PUSEL", p.p_usel);
        println!("{:<28} {}", "PBFA", p.p_bfa);
        println!();
    }
    let p = ScenarioSpec::paper().test_memory(8 * 1024).testgen();
    match mcversi_bench::write_artifact("table3_testgen_params.json", &p) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
