//! Regenerates paper Table 5: bugs found within growing budgets.
//!
//! The paper observes that the stateless generators (pseudo-random, litmus) do
//! not improve over time, so running ten 24-hour samples is equivalent to one
//! 10-day run; Table 5 reports the fraction of bugs found within 1, 5 and 10
//! budget units.  This binary performs the same extrapolation over the scaled
//! budgets: one [`mcversi_core::ScenarioGrid`] per generator
//! row sweeps the paper's Table 4 bug corpus, and the fraction of bugs found
//! within 1×, 5× and 10× the per-sample budget is reported.

use mcversi_bench::{banner, metrics_summary, write_artifact};
use mcversi_core::report::{aggregate_cell, budget_extrapolation};
use mcversi_core::scenario::jsonl_sink_from_env;
use mcversi_core::sink::NullSink;
use mcversi_core::{GeneratorKind, ScenarioGrid, ScenarioSpec, SeedPolicy};
use mcversi_sim::Bug;
use std::collections::BTreeMap;

fn main() {
    let base = ScenarioSpec::from_env();
    let mut jsonl = jsonl_sink_from_env();
    banner("Table 5: bugs found within growing budgets", &base);
    let rows: Vec<(GeneratorKind, u64)> = vec![
        (GeneratorKind::McVerSiAll, 8 * 1024),
        (GeneratorKind::McVerSiRand, 1024),
        (GeneratorKind::McVerSiRand, 8 * 1024),
        (GeneratorKind::DiyLitmus, 8 * 1024),
    ];
    let multiples = [1usize, 5, 10];
    let mut report: BTreeMap<String, BTreeMap<usize, f64>> = BTreeMap::new();
    let mut all_raw = Vec::new();

    for (generator, memory) in rows {
        let grid = ScenarioGrid::new(base.clone().generator(generator).test_memory(memory))
            .bugs(Bug::ALL)
            .seed_policy(SeedPolicy::Strided {
                base: 500,
                bug_weight: 37,
                model_weight: 0,
                core_weight: 0,
                generator_weight: 0,
            });
        let label = grid.base().display_label();
        println!("{label} ...");
        let mut cells = Vec::new();
        for cell in grid.cells() {
            let results = match &mut jsonl {
                Some(sink) => cell.run(sink),
                None => cell.run(&mut NullSink),
            };
            let bug = cell
                .bug
                .expect("the table-5 bug axis has no correct-design cells");
            cells.push((
                bug,
                aggregate_cell(cell.generator, &label, &results, cell.max_test_runs),
            ));
            all_raw.extend(results);
        }
        let table = budget_extrapolation(&cells, &multiples);
        report.insert(label, table);
    }

    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "Bugs found within", "1 budget", "5 budgets", "10 budgets"
    );
    for (label, row) in &report {
        println!(
            "{:<22} {:>9.0}% {:>9.0}% {:>9.0}%",
            label,
            row[&1] * 100.0,
            row[&5] * 100.0,
            row[&10] * 100.0
        );
    }
    println!("\n(The GP-based McVerSi-ALL row is only meaningful at 1 budget: its state");
    println!(" does not compose across independent samples, matching the paper's N/A cells.)");

    if let Some(line) = metrics_summary(&all_raw) {
        println!("\n{line}");
    }
    if let Some(sink) = &jsonl {
        println!("\nevent stream: {} JSONL lines", sink.lines());
    }
    if let Ok(path) = write_artifact("table5_budget_extrapolation.json", &report) {
        println!("\nartifact: {}", path.display());
    }
}
