//! Regenerates paper Table 5: bugs found within growing budgets.
//!
//! The paper observes that the stateless generators (pseudo-random, litmus) do
//! not improve over time, so running ten 24-hour samples is equivalent to one
//! 10-day run; Table 5 reports the fraction of bugs found within 1, 5 and 10
//! budget units.  This binary performs the same extrapolation over the scaled
//! budgets: it runs the campaigns for the non-GP generators plus the McVerSi
//! reference configuration and reports the fraction of bugs found within 1×,
//! 5× and 10× the per-sample budget.

use mcversi_bench::{banner, write_artifact, Scale};
use mcversi_core::campaign::run_samples;
use mcversi_core::report::{aggregate_cell, budget_extrapolation};
use mcversi_core::GeneratorKind;
use mcversi_sim::Bug;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    banner("Table 5: bugs found within growing budgets", &scale);
    let rows: Vec<(GeneratorKind, u64, &str)> = vec![
        (GeneratorKind::McVerSiAll, 8 * 1024, "McVerSi-ALL (8KB)"),
        (GeneratorKind::McVerSiRand, 1024, "McVerSi-RAND (1KB)"),
        (GeneratorKind::McVerSiRand, 8 * 1024, "McVerSi-RAND (8KB)"),
        (GeneratorKind::DiyLitmus, 8 * 1024, "diy-litmus"),
    ];
    let multiples = [1usize, 5, 10];
    let mut report: BTreeMap<String, BTreeMap<usize, f64>> = BTreeMap::new();

    for (generator, memory, label) in &rows {
        println!("{label} ...");
        let mut cells = Vec::new();
        for &bug in Bug::ALL.iter() {
            let cfg = scale.campaign(*generator, Some(bug), *memory);
            let results = run_samples(&cfg, scale.samples, 500 + bug as u64 * 37);
            cells.push((
                bug,
                aggregate_cell(*generator, label, &results, scale.test_runs),
            ));
        }
        let table = budget_extrapolation(&cells, &multiples);
        report.insert(label.to_string(), table);
    }

    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "Bugs found within", "1 budget", "5 budgets", "10 budgets"
    );
    for (label, row) in &report {
        println!(
            "{:<22} {:>9.0}% {:>9.0}% {:>9.0}%",
            label,
            row[&1] * 100.0,
            row[&5] * 100.0,
            row[&10] * 100.0
        );
    }
    println!("\n(The GP-based McVerSi-ALL row is only meaningful at 1 budget: its state");
    println!(" does not compose across independent samples, matching the paper's N/A cells.)");

    if let Ok(path) = write_artifact("table5_budget_extrapolation.json", &report) {
        println!("\nartifact: {}", path.display());
    }
}
