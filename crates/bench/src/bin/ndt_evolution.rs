//! Regenerates the §6.1 NDT analysis: how the average non-determinism of the
//! GP population evolves over test-runs, for 1 KB and 8 KB test memories and
//! for the selective vs. standard crossover.
//!
//! The paper's finding: with 1 KB of test memory the initial random population
//! already exceeds NDT 2.0; with 8 KB it starts around 1.1 and only
//! McVerSi-ALL (selective crossover) pushes it to 2.0 or above.  The four
//! traced configurations form the generator axis of one declarative
//! [`mcversi_core::ScenarioGrid`]; the per-test-run NDT samples
//! are this binary's own trace (it observes the generator, not a campaign).

use mcversi_bench::{banner, write_artifact};
use mcversi_core::{ScenarioGrid, ScenarioSpec, TestRunner, TestSource};
use mcversi_sim::BugConfig;
use mcversi_telemetry as telemetry;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct NdtTracePoint {
    test_run: usize,
    mean_population_ndt: f64,
    run_ndt: f64,
}

#[derive(Debug, Serialize)]
struct NdtTrace {
    label: String,
    points: Vec<NdtTracePoint>,
}

fn main() {
    use mcversi_core::GeneratorKind::*;
    let base = ScenarioSpec::from_env().seed(7);
    banner("NDT evolution (paper §6.1)", &base);
    // This binary drives the runner directly (no campaign loop), so the
    // telemetry opt-in and the final snapshot are handled here.
    if base.metrics.is_some() {
        telemetry::enable();
    }
    telemetry::reset_local();
    let grid = ScenarioGrid::new(base).generator_columns([
        (McVerSiAll, 1024, None),
        (McVerSiAll, 8 * 1024, None),
        (McVerSiStdXo, 8 * 1024, None),
        (McVerSiRand, 8 * 1024, None),
    ]);
    let mut traces = Vec::new();

    for cell in grid.cells() {
        let label = cell.display_label();
        println!("{label} ...");
        let cfg = cell.mcversi();
        let params = cfg.testgen.clone();
        let mut runner = TestRunner::new(cfg, BugConfig::none());
        let mut source = TestSource::new(cell.generator, params, cell.base_seed);
        let mut points = Vec::new();
        for run in 1..=cell.max_test_runs {
            let (id, test, _) = source.next_test();
            let result = runner.run_test(&test);
            source.feedback(id, &result);
            points.push(NdtTracePoint {
                test_run: run,
                mean_population_ndt: source.population_mean_ndt(),
                run_ndt: result.analysis.ndt,
            });
        }
        let first = points.first().map(|p| p.run_ndt).unwrap_or(0.0);
        let last_mean = points.last().map(|p| p.mean_population_ndt).unwrap_or(0.0);
        let max_run = points.iter().map(|p| p.run_ndt).fold(0.0f64, f64::max);
        println!(
            "  initial run NDT {:.2}, final population mean NDT {:.2}, max run NDT {:.2}",
            first, last_mean, max_run
        );
        traces.push(NdtTrace { label, points });
    }

    println!("\nSeries (test-run index vs population mean NDT):");
    for trace in &traces {
        print!("{:<22}", trace.label);
        let step = (trace.points.len() / 10).max(1);
        for p in trace.points.iter().step_by(step) {
            print!(" {:.2}", p.mean_population_ndt);
        }
        println!();
    }

    let snapshot = telemetry::local_snapshot();
    if !snapshot.is_empty() {
        println!(
            "\ntelemetry: {} counter(s), {} ns in phase timers",
            snapshot.counters.len(),
            snapshot.timer_sum_ns("phase.")
        );
    }

    if let Ok(path) = write_artifact("ndt_evolution.json", &traces) {
        println!("\nartifact: {}", path.display());
    }
}
