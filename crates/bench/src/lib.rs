//! Benchmark harness and experiment support for the McVerSi reproduction.
//!
//! The `benches/` directory contains Criterion micro-benchmarks of the
//! framework's own costs (checker, crossover, simulator throughput, coverage
//! fitness, litmus end-to-end), and `src/bin/` contains one binary per table
//! or figure of the paper's evaluation (see DESIGN.md for the index).

pub mod core_matrix;
pub mod experiment;
pub mod matrix;

pub use core_matrix::{core_matrix_rows, run_core_matrix};
pub use experiment::{banner, table_columns, write_artifact, Scale};
pub use matrix::{render_matrix, shape_expectations};

#[cfg(test)]
mod smoke {
    use mcversi_core::GeneratorKind;

    /// Crate-level smoke test: experiment scaffolding builds a campaign and
    /// the vendored serde stack serializes a config to JSON.
    #[test]
    fn scaffolding_and_artifacts() {
        let scale = crate::Scale::from_env();
        let campaign = scale.campaign(GeneratorKind::McVerSiRand, None, 1024);
        assert!(campaign.max_test_runs >= 1);
        let json = serde_json::to_string_pretty(&campaign.mcversi.system)
            .expect("system config serializes");
        assert!(json.contains("\"num_cores\""), "json was: {json}");
    }
}
