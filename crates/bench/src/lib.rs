//! Benchmark harness and experiment support for the McVerSi reproduction.
//!
//! The `benches/` directory contains Criterion micro-benchmarks of the
//! framework's own costs (checker, crossover, simulator throughput, coverage
//! fitness, litmus end-to-end), and `src/bin/` contains one binary per table
//! or figure of the paper's evaluation (see DESIGN.md for the index).

pub mod experiment;

pub use experiment::{banner, table_columns, write_artifact, Scale};
