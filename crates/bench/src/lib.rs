//! Benchmark harness and experiment support for the McVerSi reproduction.
//!
//! The `benches/` directory contains Criterion micro-benchmarks of the
//! framework's own costs (checker, crossover, simulator throughput, coverage
//! fitness, litmus end-to-end), and `src/bin/` contains one binary per table
//! or figure of the paper's evaluation (see DESIGN.md for the index).

#![forbid(unsafe_code)]

pub mod core_matrix;
pub mod experiment;
pub mod matrix;

pub use core_matrix::{core_matrix_rows, run_core_matrix};
pub use experiment::{banner, metrics_summary, table_columns, write_artifact};

pub use matrix::{render_matrix, shape_expectations, verify_enumerated_corpus};

#[cfg(test)]
mod smoke {
    use mcversi_core::{GeneratorKind, ScenarioSpec};

    /// Crate-level smoke test: experiment scaffolding builds a campaign and
    /// the vendored serde stack round-trips a spec through JSON.
    #[test]
    fn scaffolding_and_artifacts() {
        let spec = ScenarioSpec::from_env()
            .generator(GeneratorKind::McVerSiRand)
            .test_memory(1024);
        let campaign = spec.campaign();
        assert!(campaign.max_test_runs >= 1);
        let json = serde_json::to_string_pretty(&campaign.mcversi.system)
            .expect("system config serializes");
        assert!(json.contains("\"num_cores\""), "json was: {json}");
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("spec round trip");
        assert_eq!(back, spec);
    }
}
