//! Cross-model litmus verdict matrix.
//!
//! For every weak-model litmus shape the subsystem supports, this module
//! builds the *canonical weak outcome* — the candidate execution a maximally
//! relaxed machine could produce, with its dependency edges and fence events
//! recorded exactly as the simulator's observer would record them — and pins
//! the expected checker verdict under every [`ModelKind`].
//!
//! The matrix is printed by the `table4_bug_coverage` binary (demonstrating
//! that the dependency/fence machinery changes verdicts across models, e.g.
//! `MP` is forbidden under TSO but allowed under the ARM-ish model) and the
//! expectations double as differential regression tests.

use mcversi_mcm::checker::Checker;
use mcversi_mcm::signature::{classify_execution, OracleVerdict};
use mcversi_mcm::{
    Address, CandidateExecution, DepKind, ExecutionBuilder, FenceKind, ModelKind, ProcessorId,
    Value,
};
use mcversi_testgen::enumerate::{enumerate, EnumerationBounds};

/// One row of the matrix: a named weak outcome and, for every model in
/// [`ModelKind::ALL`] order, whether that outcome is expected to be forbidden.
#[derive(Debug)]
pub struct ShapeExpectation {
    /// Litmus shape name (herd-style, flavours inline).
    pub name: &'static str,
    /// The canonical weak-outcome execution.
    pub exec: CandidateExecution,
    /// Expected "forbidden" verdict per model, in [`ModelKind::ALL`] order.
    pub forbidden: [bool; 5],
}

struct Mp {
    writer_fence: Option<FenceKind>,
    reader_dep: bool,
    reader_fence: Option<FenceKind>,
}

fn mp(cfg: Mp) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let (p0, p1) = (ProcessorId(0), ProcessorId(1));
    let (x, y) = (Address(0x100), Address(0x200));
    let wx = b.write(p0, x, Value(1));
    if let Some(kind) = cfg.writer_fence {
        b.fence(p0, kind);
    }
    let wy = b.write(p0, y, Value(2));
    let ry = b.read(p1, y, Value(2));
    if let Some(kind) = cfg.reader_fence {
        b.fence(p1, kind);
    }
    let rx = b.read(p1, x, Value(0));
    if cfg.reader_dep {
        b.dependency(DepKind::Addr, ry, rx);
    }
    b.reads_from(wy, ry);
    b.reads_from_initial(rx);
    b.coherence_after_initial(wx);
    b.coherence_after_initial(wy);
    b.build()
}

fn sb(fence: Option<FenceKind>) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let (p0, p1) = (ProcessorId(0), ProcessorId(1));
    let (x, y) = (Address(0x100), Address(0x200));
    let wx = b.write(p0, x, Value(1));
    if let Some(kind) = fence {
        b.fence(p0, kind);
    }
    let ry = b.read(p0, y, Value(0));
    let wy = b.write(p1, y, Value(2));
    if let Some(kind) = fence {
        b.fence(p1, kind);
    }
    let rx = b.read(p1, x, Value(0));
    b.reads_from_initial(ry);
    b.reads_from_initial(rx);
    b.coherence_after_initial(wx);
    b.coherence_after_initial(wy);
    b.build()
}

fn lb(dep: Option<DepKind>, fence: Option<FenceKind>) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let (p0, p1) = (ProcessorId(0), ProcessorId(1));
    let (x, y) = (Address(0x100), Address(0x200));
    let rx = b.read(p0, x, Value(2));
    if let Some(kind) = fence {
        b.fence(p0, kind);
    }
    let wy = b.write(p0, y, Value(1));
    let ry = b.read(p1, y, Value(1));
    if let Some(kind) = fence {
        b.fence(p1, kind);
    }
    let wx = b.write(p1, x, Value(2));
    if let Some(kind) = dep {
        b.dependency(kind, rx, wy);
        b.dependency(kind, ry, wx);
    }
    b.reads_from(wx, rx);
    b.reads_from(wy, ry);
    b.coherence_after_initial(wx);
    b.coherence_after_initial(wy);
    b.build()
}

fn wrc(middle: Option<FenceKind>, deps: bool) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let (x, y) = (Address(0x100), Address(0x200));
    let wx = b.write(ProcessorId(0), x, Value(1));
    let r1x = b.read(ProcessorId(1), x, Value(1));
    if let Some(kind) = middle {
        b.fence(ProcessorId(1), kind);
    }
    let w1y = b.write(ProcessorId(1), y, Value(2));
    if deps && middle.is_none() {
        b.dependency(DepKind::Data, r1x, w1y);
    }
    let r2y = b.read(ProcessorId(2), y, Value(2));
    let r2x = b.read(ProcessorId(2), x, Value(0));
    if deps || middle.is_some() {
        b.dependency(DepKind::Addr, r2y, r2x);
    }
    b.reads_from(wx, r1x);
    b.reads_from(w1y, r2y);
    b.reads_from_initial(r2x);
    b.coherence_after_initial(wx);
    b.coherence_after_initial(w1y);
    b.build()
}

fn iriw(deps: bool, fence: Option<FenceKind>) -> CandidateExecution {
    let mut b = ExecutionBuilder::new();
    let (x, y) = (Address(0x100), Address(0x200));
    let wx = b.write(ProcessorId(0), x, Value(1));
    let wy = b.write(ProcessorId(1), y, Value(2));
    let r2x = b.read(ProcessorId(2), x, Value(1));
    if let Some(kind) = fence {
        b.fence(ProcessorId(2), kind);
    }
    let r2y = b.read(ProcessorId(2), y, Value(0));
    let r3y = b.read(ProcessorId(3), y, Value(2));
    if let Some(kind) = fence {
        b.fence(ProcessorId(3), kind);
    }
    let r3x = b.read(ProcessorId(3), x, Value(0));
    if deps {
        b.dependency(DepKind::Addr, r2x, r2y);
        b.dependency(DepKind::Addr, r3y, r3x);
    }
    b.reads_from(wx, r2x);
    b.reads_from_initial(r2y);
    b.reads_from(wy, r3y);
    b.reads_from_initial(r3x);
    b.coherence_after_initial(wx);
    b.coherence_after_initial(wy);
    b.build()
}

fn s_shape() -> CandidateExecution {
    // T0: W x=2; W y=1.  T1: R y=1; W x=1.  Weak outcome: T1's write to x is
    // coherence-ordered before T0's.
    let mut b = ExecutionBuilder::new();
    let (p0, p1) = (ProcessorId(0), ProcessorId(1));
    let (x, y) = (Address(0x100), Address(0x200));
    let wx0 = b.write(p0, x, Value(2));
    let wy = b.write(p0, y, Value(1));
    let ry = b.read(p1, y, Value(1));
    let wx1 = b.write(p1, x, Value(1));
    b.reads_from(wy, ry);
    b.coherence_after_initial(wx1);
    b.coherence(wx1, wx0);
    b.coherence_after_initial(wy);
    b.build()
}

/// Builds every pinned shape with its expected per-model verdicts.
///
/// Columns follow [`ModelKind::ALL`]: `[SC, TSO, ARMish, POWERish, RMO]`;
/// `true` means the weak outcome is forbidden (checker reports a violation).
pub fn shape_expectations() -> Vec<ShapeExpectation> {
    use FenceKind::*;
    let full = Some(Full);
    vec![
        ShapeExpectation {
            name: "MP",
            exec: mp(Mp {
                writer_fence: None,
                reader_dep: false,
                reader_fence: None,
            }),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "MP+addr",
            exec: mp(Mp {
                writer_fence: None,
                reader_dep: true,
                reader_fence: None,
            }),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "MP+mfence+addr",
            exec: mp(Mp {
                writer_fence: full,
                reader_dep: true,
                reader_fence: None,
            }),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "MP+lwsync+addr",
            exec: mp(Mp {
                writer_fence: Some(LightweightSync),
                reader_dep: true,
                reader_fence: None,
            }),
            forbidden: [true, true, false, true, false],
        },
        ShapeExpectation {
            name: "MP+rel+addr",
            exec: mp(Mp {
                writer_fence: Some(Release),
                reader_dep: true,
                reader_fence: None,
            }),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "MP+mfences",
            exec: mp(Mp {
                writer_fence: full,
                reader_dep: false,
                reader_fence: full,
            }),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "SB",
            exec: sb(None),
            forbidden: [true, false, false, false, false],
        },
        ShapeExpectation {
            name: "SB+mfences",
            exec: sb(full),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "SB+lwsyncs",
            exec: sb(Some(LightweightSync)),
            forbidden: [true, false, false, false, false],
        },
        ShapeExpectation {
            name: "LB",
            exec: lb(None, None),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "LB+datas",
            exec: lb(Some(DepKind::Data), None),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "LB+mfences",
            exec: lb(None, full),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "WRC+data+addr",
            exec: wrc(None, true),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "WRC+mfence+addr",
            exec: wrc(full, true),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "IRIW",
            exec: iriw(false, None),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "IRIW+addrs",
            exec: iriw(true, None),
            forbidden: [true, true, false, false, false],
        },
        ShapeExpectation {
            name: "IRIW+mfences",
            exec: iriw(false, full),
            forbidden: [true, true, true, true, true],
        },
        ShapeExpectation {
            name: "S",
            exec: s_shape(),
            forbidden: [true, true, false, false, false],
        },
    ]
}

/// Checks one shape under one model; returns `true` when forbidden.
pub fn is_forbidden(exec: &CandidateExecution, model: ModelKind) -> bool {
    Checker::new(model.instance()).check(exec).is_violation()
}

/// Verifies the enumerated corpus against the axiomatic checker: for every
/// enumerated test × model, the closed-form oracle's verdict must equal the
/// checker's verdict on the cycle's canonical weak-outcome execution.
///
/// This is the corpus-wide independent-oracle guarantee the litmus
/// enumeration subsystem rests on (the pinned [`shape_expectations`] cover
/// the classic shapes by hand; this covers *all* of them mechanically).
/// Returns `(summary, mismatches)`.
pub fn verify_enumerated_corpus(bounds: &EnumerationBounds) -> (String, usize) {
    use std::fmt::Write as _;
    let corpus = enumerate(bounds);
    let mut mismatches = 0usize;
    let mut per_model_forbidden = [0usize; ModelKind::ALL.len()];
    let mut out = String::new();
    for test in corpus.iter() {
        match verify_one(test) {
            Err(diagnostics) => {
                out.push_str(&diagnostics);
                mismatches += diagnostics.lines().count();
            }
            Ok(checker_forbidden) => {
                for (count, forbidden) in per_model_forbidden.iter_mut().zip(checker_forbidden) {
                    *count += forbidden as usize;
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "{} enumerated tests at {}x{}; forbidden per model:",
        corpus.len(),
        bounds.max_threads,
        bounds.max_edges
    );
    for (i, model) in ModelKind::ALL.into_iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>9}: {:>5} forbidden / {:>5} allowed",
            model.name(),
            per_model_forbidden[i],
            corpus.len() - per_model_forbidden[i]
        );
    }
    (out, mismatches)
}

/// Verifies one enumerated test: builds the canonical weak-outcome execution
/// and compares the checker's verdict with the oracle's under every model.
///
/// Returns the checker's per-model verdict row on success (it then equals
/// the test's `forbidden` row), or the newline-separated mismatch
/// diagnostics.  Shared by [`verify_enumerated_corpus`] and the test-suite
/// samples so the comparison contract has exactly one implementation.
pub fn verify_one(test: &mcversi_testgen::EnumeratedTest) -> Result<[bool; 5], String> {
    use std::fmt::Write as _;
    let exec = test.cycle.canonical_execution();
    if let Err(e) = exec.validate() {
        return Err(format!(
            "{}: malformed canonical execution: {e:?}\n",
            test.name
        ));
    }
    let mut row = [false; ModelKind::ALL.len()];
    let mut diagnostics = String::new();
    for (i, model) in ModelKind::ALL.into_iter().enumerate() {
        row[i] = is_forbidden(&exec, model);
        if row[i] != test.forbidden[i] {
            let _ = writeln!(
                diagnostics,
                "{} under {}: oracle says forbidden={}, checker says {}",
                test.name, model, test.forbidden[i], row[i]
            );
        }
    }
    if diagnostics.is_empty() {
        Ok(row)
    } else {
        Err(diagnostics)
    }
}

/// Verifies the signature-layer cycle oracle (the zero-checker fast path of
/// collective checking) against the axiomatic checker over the enumerated
/// corpus: for every test × model, an oracle verdict that certifies validity
/// must coincide with a passing `Checker::check`, a forbidden-cycle verdict
/// with a violation, and the oracle must never abstain — these canonical
/// weak-outcome executions are exactly the critical cycles the oracle is
/// built to classify.  Returns `(summary, mismatches)`.
pub fn verify_oracle_conformance(bounds: &EnumerationBounds) -> (String, usize) {
    use std::fmt::Write as _;
    let corpus = enumerate(bounds);
    let mut mismatches = 0usize;
    let mut certified_valid = 0usize;
    let mut forbidden = 0usize;
    let mut out = String::new();
    for test in corpus.iter() {
        let exec = test.cycle.canonical_execution();
        for model in ModelKind::ALL {
            let oracle = classify_execution(&exec, model);
            let checker_forbids = is_forbidden(&exec, model);
            let agrees = match oracle {
                OracleVerdict::Undecided => false,
                OracleVerdict::ForbiddenCycle => checker_forbids,
                OracleVerdict::ScConsistent | OracleVerdict::AllowedCycles => !checker_forbids,
            };
            if !agrees {
                mismatches += 1;
                let _ = writeln!(
                    out,
                    "{} under {}: oracle says {:?}, checker says forbidden={}",
                    test.name, model, oracle, checker_forbids
                );
            } else if checker_forbids {
                forbidden += 1;
            } else {
                certified_valid += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "{} enumerated tests x {} models: {} oracle-certified valid, \
         {} forbidden, {} mismatches",
        corpus.len(),
        ModelKind::ALL.len(),
        certified_valid,
        forbidden,
        mismatches
    );
    (out, mismatches)
}

/// Verifies the vector-clock first pass (`mcversi-conformance`) against the
/// axiomatic checker over the enumerated corpus: for every test × model, a
/// decided vc verdict must equal the checker's, and vc may abstain only under
/// the dependency-ordered models (it decides SC and TSO exactly).  Returns
/// `(summary, mismatches)`.
pub fn verify_vc_conformance(bounds: &EnumerationBounds) -> (String, usize) {
    use mcversi_conformance::VcChecker;
    use std::fmt::Write as _;
    let corpus = enumerate(bounds);
    let mut mismatches = 0usize;
    let mut decided_valid = 0usize;
    let mut decided_forbidden = 0usize;
    let mut abstained = 0usize;
    let mut out = String::new();
    for test in corpus.iter() {
        let exec = test.cycle.canonical_execution();
        for model in ModelKind::ALL {
            let vc = VcChecker::new(model).check(&exec);
            let checker_forbids = is_forbidden(&exec, model);
            let agrees = if vc.is_abstain() {
                model.is_relaxed()
            } else {
                vc.is_violation() == checker_forbids
            };
            if !agrees {
                mismatches += 1;
                let _ = writeln!(
                    out,
                    "{} under {}: vc says {vc}, checker says forbidden={}",
                    test.name, model, checker_forbids
                );
            } else if vc.is_abstain() {
                abstained += 1;
            } else if checker_forbids {
                decided_forbidden += 1;
            } else {
                decided_valid += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "{} enumerated tests x {} models: {} vc-certified valid, \
         {} forbidden, {} abstained, {} mismatches",
        corpus.len(),
        ModelKind::ALL.len(),
        decided_valid,
        decided_forbidden,
        abstained,
        mismatches
    );
    (out, mismatches)
}

/// Renders the verdict matrix and compares live checker verdicts against the
/// pinned expectations.  Returns `(rendered table, mismatches)`.
pub fn render_matrix() -> (String, usize) {
    use std::fmt::Write as _;
    let shapes = shape_expectations();
    let name_w = shapes
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(8)
        .max("Shape".len());
    let mut out = String::new();
    let _ = write!(out, "{:<name_w$}", "Shape");
    for model in ModelKind::ALL {
        let _ = write!(out, "  {:>9}", model.name());
    }
    let _ = writeln!(out);
    let mut mismatches = 0usize;
    for shape in &shapes {
        let _ = write!(out, "{:<name_w$}", shape.name);
        for (i, model) in ModelKind::ALL.into_iter().enumerate() {
            let got = is_forbidden(&shape.exec, model);
            let cell = match (got, got == shape.forbidden[i]) {
                (true, true) => "forbid",
                (false, true) => "allow",
                (true, false) => "forbid!?",
                (false, false) => "allow!?",
            };
            if got != shape.forbidden[i] {
                mismatches += 1;
            }
            let _ = write!(out, "  {cell:>9}");
        }
        let _ = writeln!(out);
    }
    (out, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The differential pin: every shape × model verdict matches the table.
    #[test]
    fn pinned_verdicts_hold_for_every_shape_and_model() {
        for shape in shape_expectations() {
            assert!(
                shape.exec.validate().is_ok(),
                "{} outcome is malformed: {:?}",
                shape.name,
                shape.exec.validate()
            );
            for (i, model) in ModelKind::ALL.into_iter().enumerate() {
                assert_eq!(
                    is_forbidden(&shape.exec, model),
                    shape.forbidden[i],
                    "{} under {}",
                    shape.name,
                    model
                );
            }
        }
    }

    /// The headline acceptance criterion: `MP` without fences gets a
    /// different verdict under TSO vs. the ARM-ish model.
    #[test]
    fn mp_differs_between_tso_and_armish() {
        let mp = shape_expectations()
            .into_iter()
            .find(|s| s.name == "MP")
            .unwrap();
        assert!(is_forbidden(&mp.exec, ModelKind::Tso));
        assert!(!is_forbidden(&mp.exec, ModelKind::Armish));
    }

    /// Model strength is monotone on the pinned outcomes: a shape allowed by
    /// a stronger model is allowed by every weaker one (columns ordered
    /// strongest → weakest except the ARMish/POWERish siblings).
    #[test]
    fn pinned_matrix_is_monotone() {
        for shape in shape_expectations() {
            let [sc, tso, armish, powerish, rmo] = shape.forbidden;
            // forbidden may only *decrease* down the chain.
            assert!(sc >= tso, "{}: SC weaker than TSO?", shape.name);
            assert!(tso >= armish, "{}: TSO weaker than ARMish?", shape.name);
            assert!(tso >= powerish, "{}: TSO weaker than POWERish?", shape.name);
            assert!(armish >= rmo, "{}: ARMish weaker than RMO?", shape.name);
            assert!(powerish >= rmo, "{}: POWERish weaker than RMO?", shape.name);
        }
    }

    #[test]
    fn render_matrix_reports_no_mismatches() {
        let (table, mismatches) = render_matrix();
        assert_eq!(mismatches, 0, "matrix:\n{table}");
        assert!(table.contains("MP+mfence+addr"));
        for model in ModelKind::ALL {
            assert!(table.contains(model.name()));
        }
    }

    /// The enumerated corpus subsumes every hand-pinned shape *with the same
    /// verdict row*: the closed-form oracle reproduces the expectations this
    /// module pins by hand (`SB+lwsyncs` is one canonical name shift away:
    /// the hand row spells it the same).
    #[test]
    fn enumerated_corpus_subsumes_the_pinned_expectations() {
        let corpus = enumerate(&EnumerationBounds::default());
        for shape in shape_expectations() {
            let test = corpus
                .iter()
                .find(|t| t.name == shape.name)
                .unwrap_or_else(|| panic!("pinned shape {} not enumerated", shape.name));
            assert_eq!(
                test.forbidden, shape.forbidden,
                "{}: oracle verdicts differ from the pinned row",
                shape.name
            );
        }
    }

    /// The corpus-wide oracle guarantee at the toy bound (fast; the default
    /// bound runs in the release-mode table4 binary and a strided sample in
    /// the workspace property tests).
    #[test]
    fn enumerated_toy_corpus_verifies_against_the_checker() {
        let (summary, mismatches) = verify_enumerated_corpus(&EnumerationBounds::new(2, 4));
        assert_eq!(mismatches, 0, "{summary}");
        assert!(summary.contains("enumerated tests"));
    }

    /// Satellite conformance pin: the collective-checking cycle oracle's
    /// short-circuit decisions agree with `Checker::check` on every
    /// enumerated `2x4` test under every model, and it never abstains there.
    #[test]
    fn oracle_conforms_to_the_checker_on_the_toy_corpus() {
        let (summary, mismatches) = verify_oracle_conformance(&EnumerationBounds::new(2, 4));
        assert_eq!(mismatches, 0, "{summary}");
        assert!(summary.contains("0 mismatches"));
    }

    /// Conformance pin for the vector-clock first pass: its decided verdicts
    /// agree with `Checker::check` on every enumerated `2x4` test under every
    /// model, it never abstains under SC/TSO, and it decides at least some
    /// tests in both directions.
    #[test]
    fn vc_conforms_to_the_checker_on_the_toy_corpus() {
        let (summary, mismatches) = verify_vc_conformance(&EnumerationBounds::new(2, 4));
        assert_eq!(mismatches, 0, "{summary}");
        assert!(summary.contains("0 mismatches"));
    }

    /// And a deterministic stride of the default bound, so three-and
    /// four-thread cycles get checker-verified in tier-1 as well.
    #[test]
    fn enumerated_default_corpus_sample_verifies_against_the_checker() {
        let corpus = enumerate(&EnumerationBounds::default());
        for test in corpus.iter().step_by(7) {
            if let Err(diagnostics) = verify_one(test) {
                panic!("{diagnostics}");
            }
        }
    }
}
