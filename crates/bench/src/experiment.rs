//! Shared plumbing for the experiment binaries.
//!
//! Every experiment binary regenerates one table or figure of the paper's
//! evaluation.  Sweeps are described declaratively: the binaries build a
//! [`mcversi_core::ScenarioGrid`] (base spec and axes from the environment,
//! see the `mcversi_core::scenario` module documentation for the `MCVERSI_*`
//! variable table — including `MCVERSI_SPEC`, which points at a JSON
//! [`ScenarioSpec`] file such as `examples/scenario.json`) and report through
//! `mcversi_core::sink::CampaignSink` implementations; no binary reads the
//! environment directly.
//!
//! Results are printed as plain-text tables and also written as JSON under
//! `target/experiments/` so EXPERIMENTS.md can reference machine-readable
//! artifacts; setting `MCVERSI_JSONL` additionally streams every campaign
//! event to a JSONL file while the sweep runs.

use mcversi_core::scenario::GeneratorColumn;
use mcversi_core::{CampaignResult, GeneratorKind, ScenarioSpec};
use mcversi_telemetry::MetricsSnapshot;
use serde::Serialize;
use std::path::PathBuf;

/// The seven generator configurations compared in Table 4 / Table 6, as a
/// [`mcversi_core::ScenarioGrid`] generator axis.
pub fn table_columns() -> Vec<GeneratorColumn> {
    let kib = 1024u64;
    vec![
        (GeneratorKind::McVerSiAll, kib, None),
        (GeneratorKind::McVerSiAll, 8 * kib, None),
        (GeneratorKind::McVerSiStdXo, kib, None),
        (GeneratorKind::McVerSiStdXo, 8 * kib, None),
        (GeneratorKind::McVerSiRand, kib, None),
        (GeneratorKind::McVerSiRand, 8 * kib, None),
        (GeneratorKind::DiyLitmus, 8 * kib, None),
    ]
}

/// Writes a JSON artifact under `target/experiments/`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// One-line telemetry summary over a sweep's collected results, or `None`
/// when the campaign ran without telemetry (`MCVERSI_METRICS` unset).
///
/// The line reports how many per-sample snapshots were collected, the
/// counter-name count, and the share of sample wall time the `phase.*`
/// timers attribute — the quantity the acceptance bar of the telemetry layer
/// is phrased in (full per-counter tables come from `mcversi-report` over a
/// `MCVERSI_JSONL` stream).
pub fn metrics_summary(results: &[CampaignResult]) -> Option<String> {
    let mut total = MetricsSnapshot::default();
    let mut snapshots = 0usize;
    for result in results {
        if let Some(snapshot) = &result.metrics {
            total.merge(snapshot);
            snapshots += 1;
        }
    }
    if snapshots == 0 || total.is_empty() {
        return None;
    }
    let phase_ns = total.timer_sum_ns("phase.");
    let wall_ns: u64 = results
        .iter()
        .filter(|r| r.metrics.is_some())
        .map(|r| r.wall_time.as_nanos() as u64)
        .sum();
    let share = if wall_ns > 0 {
        100.0 * phase_ns as f64 / wall_ns as f64
    } else {
        0.0
    };
    Some(format!(
        "telemetry: {snapshots} sample snapshot(s), {} counter(s), \
         phase timers cover {share:.1}% of sample wall time",
        total.counters.len()
    ))
}

/// Prints the standard experiment banner for a sweep's base spec.
pub fn banner(title: &str, spec: &ScenarioSpec) {
    println!("=== {title} ===");
    println!(
        "scale: {} samples, {} test-runs/sample, {} ops/test, {} iterations, {} cores, {}",
        spec.samples,
        spec.max_test_runs,
        spec.test_size,
        spec.iterations,
        spec.cores,
        if spec.full {
            "FULL (paper) system"
        } else {
            "scaled-down system"
        },
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_core::{grid_from_env, ScenarioGrid};
    use mcversi_mcm::ModelKind;
    use mcversi_sim::CoreStrength;

    #[test]
    fn default_scale_is_small_and_columns_cover_the_paper() {
        let spec = ScenarioSpec::from_env();
        assert!(spec.samples >= 1);
        assert!(spec.max_test_runs >= 1);
        let grid = ScenarioGrid::new(spec).generator_columns(table_columns());
        assert_eq!(grid.column_labels().len(), 7);
        assert!(grid.column_labels().iter().any(|l| l == "diy-litmus"));
    }

    #[test]
    fn default_models_cover_at_least_four_architectures() {
        if std::env::var("MCVERSI_MODELS").is_ok() {
            return; // respect an explicit override in the environment
        }
        let grid = grid_from_env();
        let models = grid.model_axis();
        assert!(models.len() >= 4);
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::Armish,
            ModelKind::Rmo,
        ] {
            assert!(models.contains(&model), "{model} missing");
        }
    }

    #[test]
    fn default_core_strength_is_strong_and_cells_compose() {
        if std::env::var("MCVERSI_CORES").is_ok() {
            return; // respect an explicit override in the environment
        }
        let grid = grid_from_env();
        assert_eq!(grid.core_axis(), [CoreStrength::Strong]);
        let cell = ScenarioSpec::from_env()
            .model(ModelKind::Armish)
            .core_strength(CoreStrength::Relaxed);
        assert_eq!(cell.campaign().core_strength(), CoreStrength::Relaxed);
        assert_eq!(cell.campaign().model(), ModelKind::Armish);
    }

    #[test]
    fn config_builder_respects_memory_and_threads() {
        let spec = ScenarioSpec::from_env().test_memory(1024);
        let cfg = spec.mcversi();
        assert_eq!(cfg.testgen.test_memory_bytes, 1024);
        assert_eq!(cfg.testgen.num_threads, cfg.system.num_cores);
        let campaign = spec.test_memory(8192).campaign();
        assert_eq!(campaign.mcversi.testgen.test_memory_bytes, 8192);
    }
}
