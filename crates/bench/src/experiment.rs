//! Shared plumbing for the experiment binaries.
//!
//! Every experiment binary regenerates one table or figure of the paper's
//! evaluation.  Because the paper's budget is 24 hours of wall-clock time per
//! sample on a server farm, the default parameters here are *scaled down* so
//! the whole suite finishes on one machine; the scale can be raised (up to the
//! paper's values) through environment variables:
//!
//! | Variable               | Meaning                               | Default |
//! |------------------------|---------------------------------------|---------|
//! | `MCVERSI_SAMPLES`      | samples (seeds) per generator/bug pair | 2      |
//! | `MCVERSI_TEST_RUNS`    | test-run budget per sample             | 60     |
//! | `MCVERSI_TEST_SIZE`    | operations per test                    | 96     |
//! | `MCVERSI_ITERATIONS`   | executions per test-run                | 4      |
//! | `MCVERSI_CORES`        | core *count* (a number) and/or core *strengths* (`strong`/`relaxed`/`all`), comma-separated | 4, `strong` |
//! | `MCVERSI_WALL_SECS`    | wall-clock cap per sample (seconds)    | 120    |
//! | `MCVERSI_FULL`         | if set, use the paper-scale parameters  | unset  |
//! | `MCVERSI_MODELS`       | comma-separated target models, or `all` | `SC,TSO,ARMish,RMO` |
//!
//! `MCVERSI_CORES` mixes both axes of the core configuration: numeric parts
//! set the simulated core count, named parts select the pipeline strengths to
//! sweep (e.g. `MCVERSI_CORES=8,strong,relaxed` or just
//! `MCVERSI_CORES=strong,relaxed`).
//!
//! Results are printed as plain-text tables and also written as JSON under
//! `target/experiments/` so EXPERIMENTS.md can reference machine-readable
//! artifacts.

use mcversi_core::{CampaignConfig, GeneratorKind, McVerSiConfig};
use mcversi_mcm::ModelKind;
use mcversi_sim::{CoreStrength, ProtocolKind, SystemConfig};
use mcversi_testgen::TestGenParams;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// Scaled experiment parameters.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Samples (seeds) per generator/bug pair.
    pub samples: usize,
    /// Test-run budget per sample.
    pub test_runs: usize,
    /// Operations per test.
    pub test_size: usize,
    /// Executions per test-run.
    pub iterations: usize,
    /// Simulated cores (and test threads).
    pub cores: usize,
    /// Wall-clock cap per sample.
    pub wall_time: Duration,
    /// Whether the full paper-scale system (Table 2) is used.
    pub full: bool,
    /// The target consistency models campaigns are run against.
    pub models: Vec<ModelKind>,
    /// The core pipeline strengths campaigns are swept across.
    pub core_strengths: Vec<CoreStrength>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `MCVERSI_CORES`, which carries both axes of the core configuration:
/// numeric parts are the simulated core count, named parts
/// (`strong`/`relaxed`, or `all`) are the pipeline strengths to sweep.
/// Returns `(core count, strengths)` with the given count default; the
/// strength list defaults to `[Strong]`.
fn env_cores(default_count: usize) -> (usize, Vec<CoreStrength>) {
    let mut count = default_count;
    let mut strengths: Vec<CoreStrength> = Vec::new();
    if let Ok(raw) = std::env::var("MCVERSI_CORES") {
        for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            if let Ok(n) = part.parse::<usize>() {
                count = n.max(1);
            } else if part.eq_ignore_ascii_case("all") {
                for s in CoreStrength::ALL {
                    if !strengths.contains(&s) {
                        strengths.push(s);
                    }
                }
            } else if let Some(strength) = CoreStrength::parse(part) {
                if !strengths.contains(&strength) {
                    strengths.push(strength);
                }
            } else {
                eprintln!("warning: MCVERSI_CORES: unknown entry '{part}' skipped");
            }
        }
    }
    if strengths.is_empty() {
        strengths.push(CoreStrength::Strong);
    }
    (count, strengths)
}

/// Parses `MCVERSI_MODELS`: a comma-separated model list, or `all`.
///
/// Unknown names are reported and skipped; an empty result falls back to the
/// default four-architecture comparison.
fn env_models() -> Vec<ModelKind> {
    let default = vec![
        ModelKind::Sc,
        ModelKind::Tso,
        ModelKind::Armish,
        ModelKind::Rmo,
    ];
    let Ok(raw) = std::env::var("MCVERSI_MODELS") else {
        return default;
    };
    if raw.trim().eq_ignore_ascii_case("all") {
        return ModelKind::ALL.to_vec();
    }
    let mut models = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        match ModelKind::parse(part) {
            Some(model) if !models.contains(&model) => models.push(model),
            Some(_) => {}
            None => eprintln!("warning: MCVERSI_MODELS: unknown model '{part}' skipped"),
        }
    }
    if models.is_empty() {
        default
    } else {
        models
    }
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        let full = std::env::var("MCVERSI_FULL").is_ok();
        if full {
            let (cores, core_strengths) = env_cores(8);
            Scale {
                samples: env_usize("MCVERSI_SAMPLES", 10),
                test_runs: env_usize("MCVERSI_TEST_RUNS", 2000),
                test_size: env_usize("MCVERSI_TEST_SIZE", 1000),
                iterations: env_usize("MCVERSI_ITERATIONS", 10),
                cores,
                wall_time: Duration::from_secs(env_usize("MCVERSI_WALL_SECS", 24 * 3600) as u64),
                full,
                models: env_models(),
                core_strengths,
            }
        } else {
            let (cores, core_strengths) = env_cores(4);
            Scale {
                samples: env_usize("MCVERSI_SAMPLES", 2),
                test_runs: env_usize("MCVERSI_TEST_RUNS", 60),
                test_size: env_usize("MCVERSI_TEST_SIZE", 96),
                iterations: env_usize("MCVERSI_ITERATIONS", 4),
                cores,
                wall_time: Duration::from_secs(env_usize("MCVERSI_WALL_SECS", 120) as u64),
                full,
                models: env_models(),
                core_strengths,
            }
        }
    }

    /// Builds the framework configuration for a given test-memory size.
    pub fn mcversi_config(&self, test_memory_bytes: u64) -> McVerSiConfig {
        let system = if self.full {
            SystemConfig::paper_default().with_cores(self.cores)
        } else {
            SystemConfig::small(ProtocolKind::Mesi).with_cores(self.cores)
        };
        let testgen = if self.full {
            TestGenParams::paper_default(test_memory_bytes)
        } else {
            let mut p = TestGenParams::small();
            p.test_memory_bytes = test_memory_bytes;
            p.population_size = 24;
            p
        }
        .with_threads(self.cores)
        .with_test_size(self.test_size);
        let mut cfg = McVerSiConfig {
            system,
            testgen,
            adaptive: Default::default(),
            model: ModelKind::Tso,
            seed: 1,
        };
        cfg.testgen.iterations = self.iterations;
        cfg
    }

    /// Builds a campaign configuration (targeting x86-TSO).
    pub fn campaign(
        &self,
        generator: GeneratorKind,
        bug: Option<mcversi_sim::Bug>,
        test_memory_bytes: u64,
    ) -> CampaignConfig {
        self.campaign_for_model(generator, bug, test_memory_bytes, ModelKind::Tso)
    }

    /// Builds a campaign configuration targeting the given model.
    pub fn campaign_for_model(
        &self,
        generator: GeneratorKind,
        bug: Option<mcversi_sim::Bug>,
        test_memory_bytes: u64,
        model: ModelKind,
    ) -> CampaignConfig {
        self.campaign_cell(
            generator,
            bug,
            test_memory_bytes,
            model,
            CoreStrength::Strong,
        )
    }

    /// Builds a campaign configuration for one (model × core strength) cell.
    pub fn campaign_cell(
        &self,
        generator: GeneratorKind,
        bug: Option<mcversi_sim::Bug>,
        test_memory_bytes: u64,
        model: ModelKind,
        core: CoreStrength,
    ) -> CampaignConfig {
        CampaignConfig::new(
            generator,
            bug,
            self.mcversi_config(test_memory_bytes),
            self.test_runs,
            self.wall_time,
        )
        .with_model(model)
        .with_core_strength(core)
    }

    /// The bugs swept for a given core strength: everything in the extended
    /// corpus that is observable on that pipeline ([`mcversi_sim::Bug::required_core`]).
    /// Sweeping an unobservable bug would burn a full campaign cell on a
    /// provable no-op (e.g. `LQ+no-TSO` suppresses a squash the relaxed
    /// pipeline does not have).
    pub fn bugs_for_core(core: CoreStrength) -> Vec<mcversi_sim::Bug> {
        mcversi_sim::Bug::ALL_EXTENDED
            .into_iter()
            .filter(|b| b.required_core().is_none_or(|c| c == core))
            .collect()
    }
}

/// The seven generator configurations compared in Table 4 / Table 6.
pub fn table_columns() -> Vec<(GeneratorKind, u64, String)> {
    let kib = 1024u64;
    vec![
        (GeneratorKind::McVerSiAll, kib, "McVerSi-ALL (1KB)".into()),
        (
            GeneratorKind::McVerSiAll,
            8 * kib,
            "McVerSi-ALL (8KB)".into(),
        ),
        (
            GeneratorKind::McVerSiStdXo,
            kib,
            "McVerSi-Std.XO (1KB)".into(),
        ),
        (
            GeneratorKind::McVerSiStdXo,
            8 * kib,
            "McVerSi-Std.XO (8KB)".into(),
        ),
        (GeneratorKind::McVerSiRand, kib, "McVerSi-RAND (1KB)".into()),
        (
            GeneratorKind::McVerSiRand,
            8 * kib,
            "McVerSi-RAND (8KB)".into(),
        ),
        (GeneratorKind::DiyLitmus, 8 * kib, "diy-litmus".into()),
    ]
}

/// Writes a JSON artifact under `target/experiments/`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, scale: &Scale) {
    println!("=== {title} ===");
    println!(
        "scale: {} samples, {} test-runs/sample, {} ops/test, {} iterations, {} cores, {}",
        scale.samples,
        scale.test_runs,
        scale.test_size,
        scale.iterations,
        scale.cores,
        if scale.full {
            "FULL (paper) system"
        } else {
            "scaled-down system"
        },
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small_and_columns_cover_the_paper() {
        let scale = Scale::from_env();
        assert!(scale.samples >= 1);
        assert!(scale.test_runs >= 1);
        let cols = table_columns();
        assert_eq!(cols.len(), 7);
        assert!(cols.iter().any(|(_, _, label)| label == "diy-litmus"));
    }

    #[test]
    fn default_models_cover_at_least_four_architectures() {
        if std::env::var("MCVERSI_MODELS").is_ok() {
            return; // respect an explicit override in the environment
        }
        let scale = Scale::from_env();
        assert!(scale.models.len() >= 4);
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::Armish,
            ModelKind::Rmo,
        ] {
            assert!(scale.models.contains(&model), "{model} missing");
        }
        let campaign =
            scale.campaign_for_model(GeneratorKind::McVerSiRand, None, 1024, ModelKind::Armish);
        assert_eq!(campaign.model(), ModelKind::Armish);
    }

    #[test]
    fn default_core_strength_is_strong_and_cells_compose() {
        if std::env::var("MCVERSI_CORES").is_ok() {
            return; // respect an explicit override in the environment
        }
        let scale = Scale::from_env();
        assert_eq!(scale.core_strengths, vec![CoreStrength::Strong]);
        let cell = scale.campaign_cell(
            GeneratorKind::McVerSiRand,
            None,
            1024,
            ModelKind::Armish,
            CoreStrength::Relaxed,
        );
        assert_eq!(cell.core_strength(), CoreStrength::Relaxed);
        assert_eq!(cell.model(), ModelKind::Armish);
    }

    #[test]
    fn bugs_for_core_sweeps_only_observable_bugs() {
        let strong = Scale::bugs_for_core(CoreStrength::Strong);
        let relaxed = Scale::bugs_for_core(CoreStrength::Relaxed);
        assert_eq!(strong.len(), 11, "the paper's Table 4 sweep is pinned");
        assert_eq!(relaxed.len(), 14);
        for bug in mcversi_sim::Bug::DEPENDENCY {
            assert!(!strong.contains(&bug), "{bug} swept on the strong core");
            assert!(
                relaxed.contains(&bug),
                "{bug} missing from the relaxed sweep"
            );
        }
        assert!(
            !relaxed.contains(&mcversi_sim::Bug::LqNoTso),
            "LQ+no-TSO is a no-op on the relaxed core and must not be swept there"
        );
    }

    #[test]
    fn config_builder_respects_memory_and_threads() {
        let scale = Scale::from_env();
        let cfg = scale.mcversi_config(1024);
        assert_eq!(cfg.testgen.test_memory_bytes, 1024);
        assert_eq!(cfg.testgen.num_threads, cfg.system.num_cores);
        let campaign = scale.campaign(GeneratorKind::McVerSiRand, None, 8192);
        assert_eq!(campaign.mcversi.testgen.test_memory_bytes, 8192);
    }
}
