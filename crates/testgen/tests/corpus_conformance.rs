//! Corpus conformance: the enumerator regenerates the hand-written suites.
//!
//! The hand-written shapes (`x86_tso_suite`, the flavoured weak suites and
//! the acquire probe) are the golden reference; this suite asserts that the
//! auto-enumerated corpus subsumes every one of them — matched by canonical
//! name, with the identical thread structure — so replacing the hand-picked
//! corpus with the enumerated one cannot silently drop a shape.
//!
//! Two families are exempt, with a pinned skip list so additions to the
//! hand-written suite fail loudly:
//!
//! * `SB+rmws` — atomic read-modify-writes are events outside the
//!   critical-cycle edge vocabulary (`po`/fenced/dep × `rf`/`fr`/`ws`);
//! * `2T-*` — the systematic two-thread filler of the x86 suite enumerates
//!   *all* access pairs, most of which form no cycle at all (they exist to
//!   pad the paper's "38 tests", not as critical shapes).

use mcversi_mcm::{Address, DepKind, FenceKind, ModelKind};
use mcversi_testgen::litmus::{
    self, acquire_suite, handwritten_weak_suite_flavoured, x86_tso_suite, LitmusTest,
};
use mcversi_testgen::{OpKind, Test};
use std::collections::BTreeMap;

fn locations() -> [Address; 3] {
    [Address(0x10_0000), Address(0x10_0040), Address(0x10_0080)]
}

/// The multiset of per-thread operation-kind sequences — the
/// location-and-thread-order-independent structure of a test.
fn structure(test: &Test) -> Vec<Vec<OpKind>> {
    let mut threads: Vec<Vec<OpKind>> = test
        .threads()
        .into_iter()
        .map(|ops| ops.into_iter().map(|op| op.kind).collect())
        .collect();
    threads.sort();
    threads
}

/// Every hand-written shape the conformance contract covers.
fn golden_reference() -> Vec<LitmusTest> {
    let locs = locations();
    let mut golden = x86_tso_suite(&locs);
    for (fence, dep) in [
        (FenceKind::Full, DepKind::Data),
        (FenceKind::LightweightSync, DepKind::Data),
        (FenceKind::Release, DepKind::Ctrl),
    ] {
        golden.extend(handwritten_weak_suite_flavoured(&locs, fence, dep));
    }
    golden.extend(acquire_suite(&locs));
    golden
}

fn is_exempt(name: &str) -> bool {
    name == "SB+rmws" || name.starts_with("2T-")
}

#[test]
fn enumerator_regenerates_every_handwritten_shape() {
    let locs = locations();
    // The enumerated suite of any model carries the whole corpus (plus the
    // coherence anchors); ordering differs per model, names do not.
    let enumerated: BTreeMap<String, LitmusTest> = litmus::suite_for(ModelKind::Tso, &locs)
        .into_iter()
        .map(|t| (t.name.clone(), t))
        .collect();

    let mut covered = 0usize;
    for hand in golden_reference() {
        if is_exempt(&hand.name) {
            continue;
        }
        let regenerated = enumerated.get(&hand.name).unwrap_or_else(|| {
            panic!(
                "enumerator does not regenerate hand-written shape {}",
                hand.name
            )
        });
        assert_eq!(
            structure(&hand.test),
            structure(&regenerated.test),
            "{}: thread structure differs between hand-written and enumerated",
            hand.name
        );
        assert_eq!(
            hand.test.num_threads(),
            regenerated.test.num_threads(),
            "{}: thread count differs",
            hand.name
        );
        covered += 1;
    }
    assert!(
        covered >= 40,
        "only {covered} hand-written shapes covered — the golden reference shrank?"
    );
}

/// The skip list is exact: every exempt name is actually hand-written (no
/// stale entries) and everything outside it was matched above.
#[test]
fn exemptions_are_pinned() {
    let golden = golden_reference();
    assert!(
        golden.iter().any(|t| t.name == "SB+rmws"),
        "SB+rmws left the hand-written suite; drop it from the skip list"
    );
    let systematic = golden.iter().filter(|t| t.name.starts_with("2T-")).count();
    assert_eq!(
        systematic, 16,
        "the 2T-* systematic block changed size; re-check the exemption"
    );
}

/// The per-model expected verdicts of the enumerated corpus agree with the
/// hand-pinned ones for every shape both sides name (the full pinned matrix
/// lives in `mcversi-bench`; this covers the subset visible from testgen).
#[test]
fn enumerated_verdicts_match_the_handwritten_flavour_intent() {
    use mcversi_testgen::enumerate::{enumerate, EnumerationBounds};
    let corpus = enumerate(&EnumerationBounds::default());
    let verdict = |name: &str, model: ModelKind| -> bool {
        corpus
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .forbidden_under(model)
    };
    // The flavour table the hand-written suites encode implicitly:
    // model_flavours pairs each relaxed model with the fence that restores
    // ordering under it — so the flavoured MP must be forbidden under the
    // model whose flavour it is.
    for model in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
        for &(fence, _dep) in litmus::model_flavours(model) {
            let name = format!("MP+{fence}+addr");
            if fence == FenceKind::Full || fence == FenceKind::LightweightSync {
                assert!(
                    verdict(&name, model),
                    "{name} must be forbidden under {model}"
                );
            }
        }
        // Plain MP is allowed under every relaxed model.
        assert!(!verdict("MP", model), "plain MP forbidden under {model}");
    }
    // The acquire probe discriminates exactly the ARM-ish model among the
    // relaxed ones.
    assert!(verdict("MP+mfence+acq", ModelKind::Armish));
    assert!(!verdict("MP+mfence+acq", ModelKind::Powerish));
    assert!(!verdict("MP+mfence+acq", ModelKind::Rmo));
}
