//! Pseudo-random test generation (the `McVerSi-RAND` baseline and the GP's
//! initial population / mutation source).
//!
//! Given the user constraints of Table 3 — operation bias, test memory size
//! and stride — the generator draws each gene independently: a uniformly
//! random thread, an operation kind according to the bias, and a
//! stride-aligned address inside the (partitioned) test memory.

use crate::ops::{Op, OpKind};
use crate::params::TestGenParams;
use crate::test::{Gene, Test};
use mcversi_mcm::Address;
use rand::Rng;
use std::collections::BTreeSet;

/// A pseudo-random test generator.
#[derive(Debug, Clone)]
pub struct RandomTestGenerator {
    params: TestGenParams,
}

impl RandomTestGenerator {
    /// Creates a generator with the given parameters.
    pub fn new(params: TestGenParams) -> Self {
        RandomTestGenerator { params }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &TestGenParams {
        &self.params
    }

    /// Draws a random stride-aligned address within the test memory.
    pub fn random_address<R: Rng>(&self, rng: &mut R) -> Address {
        let slot = rng.gen_range(0..self.params.num_slots());
        self.params
            .offset_to_address(slot * self.params.stride_bytes)
    }

    /// Draws a random address from `pool` (used for PBFA-biased mutation);
    /// falls back to a uniformly random address when the pool is empty.
    pub fn random_address_from<R: Rng>(&self, rng: &mut R, pool: &BTreeSet<Address>) -> Address {
        if pool.is_empty() {
            return self.random_address(rng);
        }
        let idx = rng.gen_range(0..pool.len());
        *pool.iter().nth(idx).expect("index in range")
    }

    /// Draws a random operation according to the bias.
    pub fn random_op<R: Rng>(&self, rng: &mut R) -> Op {
        let kind = self
            .params
            .bias
            .pick(rng.gen_range(0..self.params.bias.total()));
        let addr = if kind == OpKind::Delay {
            Address(rng.gen_range(1..=self.params.max_delay_cycles) as u64)
        } else if kind.fence_kind().is_some() {
            Address(0)
        } else {
            self.random_address(rng)
        };
        Op::new(kind, addr)
    }

    /// Draws a random gene (thread plus operation).
    pub fn random_gene<R: Rng>(&self, rng: &mut R) -> Gene {
        Gene {
            pid: rng.gen_range(0..self.params.num_threads as u32),
            op: self.random_op(rng),
        }
    }

    /// Draws a random gene whose address is biased towards `pool`
    /// (Algorithm 1's PBFA-constrained mutation).
    pub fn random_gene_from<R: Rng>(&self, rng: &mut R, pool: &BTreeSet<Address>) -> Gene {
        let mut gene = self.random_gene(rng);
        if gene.op.is_memop() {
            gene.op.addr = self.random_address_from(rng, pool);
        }
        gene
    }

    /// Generates a complete random test of `params.test_size` genes.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Test {
        let genes = (0..self.params.test_size)
            .map(|_| self.random_gene(rng))
            .collect();
        Test::new(genes, self.params.num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator() -> RandomTestGenerator {
        RandomTestGenerator::new(TestGenParams::small())
    }

    #[test]
    fn generated_test_has_requested_size_and_threads() {
        let g = generator();
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(&mut rng);
        assert_eq!(t.len(), g.params().test_size);
        assert_eq!(t.num_threads(), g.params().num_threads);
        assert!(t
            .genes()
            .iter()
            .all(|g2| (g2.pid as usize) < t.num_threads()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = generator();
        let t1 = g.generate(&mut StdRng::seed_from_u64(7));
        let t2 = g.generate(&mut StdRng::seed_from_u64(7));
        let t3 = g.generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn addresses_respect_stride_and_partitioning() {
        let g = RandomTestGenerator::new(TestGenParams::paper_default(1024));
        let mut rng = StdRng::seed_from_u64(3);
        let valid: BTreeSet<Address> = g.params().all_slot_addresses().into_iter().collect();
        for _ in 0..500 {
            let a = g.random_address(&mut rng);
            assert!(valid.contains(&a), "address {a} outside the slot set");
        }
    }

    #[test]
    fn operation_mix_roughly_follows_bias() {
        let g = RandomTestGenerator::new(TestGenParams::paper_default(8 * 1024));
        let mut rng = StdRng::seed_from_u64(5);
        let mut reads = 0usize;
        let mut writes = 0usize;
        let n = 10_000;
        for _ in 0..n {
            match g.random_op(&mut rng).kind {
                OpKind::Read => reads += 1,
                OpKind::Write => writes += 1,
                _ => {}
            }
        }
        let read_frac = reads as f64 / n as f64;
        let write_frac = writes as f64 / n as f64;
        assert!((read_frac - 0.50).abs() < 0.03, "read fraction {read_frac}");
        assert!(
            (write_frac - 0.42).abs() < 0.03,
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn pbfa_pool_addresses_are_used_when_available() {
        let g = generator();
        let mut rng = StdRng::seed_from_u64(9);
        let pool: BTreeSet<Address> = [Address(0x10_0000), Address(0x10_0010)]
            .into_iter()
            .collect();
        for _ in 0..100 {
            let gene = g.random_gene_from(&mut rng, &pool);
            if gene.op.is_memop() {
                assert!(pool.contains(&gene.op.addr));
            }
        }
        // Empty pool falls back to the full address range without panicking.
        let gene = g.random_gene_from(&mut rng, &BTreeSet::new());
        assert!((gene.pid as usize) < g.params().num_threads);
    }
}
