//! Crossover and mutation operators.
//!
//! [`selective_crossover_mutate`] is the paper's Algorithm 1: genes whose
//! memory operation touches an address in a parent's fit-address set are
//! always selected from that parent, other genes are selected with probability
//! `PSELECT` (derived from the parent's fit-address fraction and `PUSEL`), and
//! slots selected from neither parent are regenerated randomly — biased with
//! probability `PBFA` towards the union of the parents' fit addresses.
//! Because the child is built slot by slot over the flat gene list, the
//! relative position of every operation is preserved and the test size stays
//! constant.
//!
//! [`single_point_crossover_mutate`] is the conventional single-point
//! crossover used by the `McVerSi-Std.XO` baseline.

use crate::ndt::NdtAnalysis;
use crate::params::TestGenParams;
use crate::random::RandomTestGenerator;
use crate::test::Test;
use mcversi_mcm::Address;
use rand::Rng;
use std::collections::BTreeSet;

fn random_bool<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p
}

/// Algorithm 1: selective crossover followed by (bounded) mutation.
///
/// `analysis1` / `analysis2` are the NDT analyses of the two parents' latest
/// test-runs; their `fitaddrs` sets drive the selection.
pub fn selective_crossover_mutate<R: Rng>(
    test1: &Test,
    test2: &Test,
    analysis1: &NdtAnalysis,
    analysis2: &NdtAnalysis,
    params: &TestGenParams,
    rng: &mut R,
) -> Test {
    assert_eq!(test1.len(), test2.len(), "parents must have equal size");
    assert_eq!(test1.num_threads(), test2.num_threads());
    let generator = RandomTestGenerator::new(params.clone());
    let fit1 = &analysis1.fitaddrs;
    let fit2 = &analysis2.fitaddrs;
    let fit_union: BTreeSet<Address> = fit1.union(fit2).copied().collect();

    let a1 = test1.fitaddr_fraction(fit1);
    let a2 = test2.fitaddr_fraction(fit2);
    let p_usel = params.p_usel;
    let p_select1 = a1 + p_usel - (a1 * p_usel);
    let p_select2 = a2 + p_usel - (a2 * p_usel);

    let mut child = test1.clone();
    let mut mutations = 0usize;

    for i in 0..child.len() {
        let g1 = test1.genes()[i];
        let g2 = test2.genes()[i];

        let select1 = if g1.op.is_memop() {
            random_bool(rng, p_usel) || fit1.contains(&g1.op.addr)
        } else {
            random_bool(rng, p_select1)
        };
        let select2 = if g2.op.is_memop() {
            random_bool(rng, p_usel) || fit2.contains(&g2.op.addr)
        } else {
            random_bool(rng, p_select2)
        };

        if !select1 && select2 {
            child.set_gene(i, g2);
        } else if !select1 && !select2 {
            mutations += 1;
            let gene = if random_bool(rng, params.p_bfa) {
                generator.random_gene_from(rng, &fit_union)
            } else {
                generator.random_gene(rng)
            };
            child.set_gene(i, gene);
        } else {
            // Retain child[i] (== test1[i]).
        }
    }

    // If crossover itself introduced few fresh genes, apply the classic
    // per-gene mutation pass with probability PMUT.
    if (mutations as f64) / (child.len() as f64) < params.mutation_probability {
        mutate(&mut child, params, &generator, rng);
    }
    child
}

/// Standard single-point crossover over the flat gene list, followed by the
/// same mutation pass (the `McVerSi-Std.XO` baseline).
pub fn single_point_crossover_mutate<R: Rng>(
    test1: &Test,
    test2: &Test,
    params: &TestGenParams,
    rng: &mut R,
) -> Test {
    assert_eq!(test1.len(), test2.len(), "parents must have equal size");
    assert_eq!(test1.num_threads(), test2.num_threads());
    let generator = RandomTestGenerator::new(params.clone());
    let point = rng.gen_range(0..=test1.len());
    let mut genes = Vec::with_capacity(test1.len());
    genes.extend_from_slice(&test1.genes()[..point]);
    genes.extend_from_slice(&test2.genes()[point..]);
    let mut child = Test::new(genes, test1.num_threads());
    mutate(&mut child, params, &generator, rng);
    child
}

/// Mutates each gene with probability `PMUT`, randomising thread and operation
/// but preserving the gene's position in the test.
fn mutate<R: Rng>(
    test: &mut Test,
    params: &TestGenParams,
    generator: &RandomTestGenerator,
    rng: &mut R,
) {
    for i in 0..test.len() {
        if random_bool(rng, params.mutation_probability) {
            let gene = generator.random_gene(rng);
            test.set_gene(i, gene);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, OpKind};
    use crate::test::Gene;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> TestGenParams {
        TestGenParams::small()
    }

    fn random_parents(seed: u64) -> (Test, Test) {
        let g = RandomTestGenerator::new(params());
        let t1 = g.generate(&mut StdRng::seed_from_u64(seed));
        let t2 = g.generate(&mut StdRng::seed_from_u64(seed + 1));
        (t1, t2)
    }

    fn analysis_with(fitaddrs: &[Address]) -> NdtAnalysis {
        let mut a = NdtAnalysis::empty();
        a.fitaddrs = fitaddrs.iter().copied().collect();
        a.ndt = 2.0;
        a
    }

    #[test]
    fn selective_crossover_preserves_size_and_thread_validity() {
        let (t1, t2) = random_parents(1);
        let a1 = analysis_with(&[]);
        let a2 = analysis_with(&[]);
        let mut rng = StdRng::seed_from_u64(3);
        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &params(), &mut rng);
        assert_eq!(child.len(), t1.len());
        assert_eq!(child.num_threads(), t1.num_threads());
        assert!(child
            .genes()
            .iter()
            .all(|g| (g.pid as usize) < child.num_threads()));
    }

    #[test]
    fn fit_address_genes_of_parent1_are_always_retained() {
        // Construct a parent whose every memory op touches the fit address:
        // those genes must all survive crossover unchanged.  The trailing
        // whole-test mutation pass is disabled so only the crossover's own
        // selection logic is under test.
        let mut p = params();
        p.mutation_probability = 0.0;
        let fit = Address(0x10_0000);
        let genes1: Vec<Gene> = (0..p.test_size)
            .map(|i| Gene {
                pid: (i % p.num_threads) as u32,
                op: Op::new(OpKind::Write, fit),
            })
            .collect();
        let t1 = Test::new(genes1, p.num_threads);
        let g = RandomTestGenerator::new(p.clone());
        let t2 = g.generate(&mut StdRng::seed_from_u64(11));
        let a1 = analysis_with(&[fit]);
        let a2 = analysis_with(&[]);
        let mut rng = StdRng::seed_from_u64(5);
        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &p, &mut rng);
        assert_eq!(child.genes(), t1.genes(), "fit genes must be preserved");
    }

    #[test]
    fn genes_unselected_in_parent1_can_come_from_parent2() {
        // Parent 2's memory ops all touch its fit address, parent 1 has no fit
        // addresses: with PUSEL = 0 every slot where parent 1 is unselected
        // must take parent 2's gene.
        let mut p = params();
        p.p_usel = 0.0;
        p.mutation_probability = 0.0;
        let fit2 = Address(0x10_0000);
        let g = RandomTestGenerator::new(p.clone());
        let t1 = g.generate(&mut StdRng::seed_from_u64(21));
        let genes2: Vec<Gene> = (0..p.test_size)
            .map(|i| Gene {
                pid: (i % p.num_threads) as u32,
                op: Op::new(OpKind::Read, fit2),
            })
            .collect();
        let t2 = Test::new(genes2, p.num_threads);
        let a1 = analysis_with(&[]);
        let a2 = analysis_with(&[fit2]);
        let mut rng = StdRng::seed_from_u64(13);
        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &p, &mut rng);
        // Memory-op slots of parent 1 are never selected (no fit addresses,
        // PUSEL 0), so they must all equal parent 2's genes.
        for (i, gene) in child.genes().iter().enumerate() {
            if t1.genes()[i].op.is_memop() {
                assert_eq!(*gene, t2.genes()[i]);
            }
        }
    }

    #[test]
    fn unselected_in_both_parents_is_mutated_within_fit_union_or_randomly() {
        let mut p = params();
        p.p_usel = 0.0;
        p.p_bfa = 1.0;
        p.mutation_probability = 0.0;
        let fit = Address(0x10_0000);
        let g = RandomTestGenerator::new(p.clone());
        let t1 = g.generate(&mut StdRng::seed_from_u64(31));
        let t2 = g.generate(&mut StdRng::seed_from_u64(32));
        // Neither parent has fit addresses covering its own genes, but the
        // "fit union" passed in steers replacement genes to `fit`.
        let a1 = analysis_with(&[fit]);
        let a2 = analysis_with(&[fit]);
        // Remove accidental matches: map both parents' ops away from `fit`.
        // (Randomly generated addresses start at 0x10_0000 too, so rebuild the
        // parents with a different base.)
        let other = Address(0x20_0000);
        let t1 = Test::new(
            t1.genes()
                .iter()
                .map(|g| Gene {
                    pid: g.pid,
                    op: Op::new(g.op.kind, if g.op.is_memop() { other } else { g.op.addr }),
                })
                .collect(),
            p.num_threads,
        );
        let t2 = Test::new(
            t2.genes()
                .iter()
                .map(|g| Gene {
                    pid: g.pid,
                    op: Op::new(g.op.kind, if g.op.is_memop() { other } else { g.op.addr }),
                })
                .collect(),
            p.num_threads,
        );
        let mut rng = StdRng::seed_from_u64(33);
        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &p, &mut rng);
        // Every memory op in the child must target the fit address (PBFA = 1)
        // because no slot could be selected from either parent.
        assert!(child
            .genes()
            .iter()
            .filter(|g| g.op.is_memop())
            .all(|g| g.op.addr == fit));
    }

    #[test]
    fn single_point_crossover_takes_a_prefix_and_suffix() {
        let mut p = params();
        p.mutation_probability = 0.0;
        let (t1, t2) = random_parents(41);
        let mut rng = StdRng::seed_from_u64(43);
        let child = single_point_crossover_mutate(&t1, &t2, &p, &mut rng);
        assert_eq!(child.len(), t1.len());
        // Find the crossover point: the child is a prefix of t1 followed by a
        // suffix of t2.
        let mut point = 0;
        while point < child.len() && child.genes()[point] == t1.genes()[point] {
            point += 1;
        }
        for i in point..child.len() {
            assert_eq!(child.genes()[i], t2.genes()[i]);
        }
    }

    #[test]
    fn mutation_probability_one_rewrites_the_whole_test() {
        let mut p = params();
        p.mutation_probability = 1.0;
        let (t1, t2) = random_parents(51);
        let mut rng = StdRng::seed_from_u64(53);
        let child = single_point_crossover_mutate(&t1, &t2, &p, &mut rng);
        // With PMUT = 1 every slot is rerandomised; sizes still match.
        assert_eq!(child.len(), t1.len());
    }
}
