//! A diy-style litmus-test suite for x86-TSO (the non-GP baseline, §5.2.2).
//!
//! The diy tool generates short tests from critical cycles of the target
//! model.  This module provides the equivalent corpus for x86-TSO: the classic
//! named two-thread shapes (SB, MP, LB, S, R, 2+2W, …), their fence and
//! locked-RMW variants, the three- and four-thread shapes (WRC, ISA2, RWC,
//! WWC, W+RWC, IRIW, …), and a systematic enumeration of all two-thread,
//! two-location, two-access tests.  In total the suite contains 38+ tests,
//! matching the "all 38 tests available" for x86-TSO used in the paper.
//!
//! Unlike diy's self-checking tests (which encode one forbidden outcome), the
//! McVerSi checker validates every observed execution against the full
//! axiomatic model, which is strictly stronger; the role of the suite — short
//! hand-shaped tests exercising the critical cycles — is preserved.

use crate::ops::{Op, OpKind};
use crate::test::{Gene, Test};
use mcversi_mcm::Address;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named litmus test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusTest {
    /// The conventional name of the shape (e.g. `"SB"`, `"IRIW"`).
    pub name: String,
    /// The test body.
    pub test: Test,
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.test)
    }
}

/// Shorthand for building per-thread op lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum A {
    /// Read location `usize`.
    R(usize),
    /// Write location `usize`.
    W(usize),
    /// Atomic RMW on location `usize`.
    U(usize),
    /// Full fence.
    F,
}

/// Builds a litmus test from per-thread access lists over numbered locations.
fn build(name: &str, threads: &[&[A]], locations: &[Address]) -> LitmusTest {
    let num_threads = threads.len();
    let mut genes = Vec::new();
    // Interleave the threads' operations round-robin so the flat list mixes
    // threads (the order within each thread is preserved, which is all that
    // matters for program order).
    let max_len = threads.iter().map(|t| t.len()).max().unwrap_or(0);
    for slot in 0..max_len {
        for (pid, thread) in threads.iter().enumerate() {
            if let Some(access) = thread.get(slot) {
                let op = match access {
                    A::R(l) => Op::new(OpKind::Read, locations[*l]),
                    A::W(l) => Op::new(OpKind::Write, locations[*l]),
                    A::U(l) => Op::new(OpKind::ReadModifyWrite, locations[*l]),
                    A::F => Op::new(OpKind::Fence, Address(0)),
                };
                genes.push(Gene {
                    pid: pid as u32,
                    op,
                });
            }
        }
    }
    LitmusTest {
        name: name.to_string(),
        test: Test::new(genes, num_threads),
    }
}

/// Generates the full x86-TSO litmus suite over the given location addresses.
///
/// At least three distinct addresses must be provided (tests use up to three
/// locations); the same suite shape is produced regardless of the concrete
/// addresses.
///
/// # Panics
///
/// Panics if fewer than three addresses are supplied.
pub fn x86_tso_suite(locations: &[Address]) -> Vec<LitmusTest> {
    assert!(
        locations.len() >= 3,
        "litmus suite needs at least 3 locations"
    );
    let l = locations;
    let shapes: &[(&str, &[&[A]])] = &[
        // ---- Classic named two-thread shapes ----
        ("SB", &[&[A::W(0), A::R(1)], &[A::W(1), A::R(0)]]),
        ("MP", &[&[A::W(0), A::W(1)], &[A::R(1), A::R(0)]]),
        ("LB", &[&[A::R(0), A::W(1)], &[A::R(1), A::W(0)]]),
        ("S", &[&[A::W(0), A::W(1)], &[A::R(1), A::W(0)]]),
        ("R", &[&[A::W(0), A::W(1)], &[A::W(1), A::R(0)]]),
        ("2+2W", &[&[A::W(0), A::W(1)], &[A::W(1), A::W(0)]]),
        ("CoRR", &[&[A::W(0)], &[A::R(0), A::R(0)]]),
        ("CoWW", &[&[A::W(0), A::W(0)]]),
        ("CoRW", &[&[A::R(0), A::W(0)], &[A::W(0)]]),
        ("CoWR", &[&[A::W(0), A::R(0)], &[A::W(0)]]),
        // ---- Fence / locked variants ----
        (
            "SB+mfences",
            &[&[A::W(0), A::F, A::R(1)], &[A::W(1), A::F, A::R(0)]],
        ),
        (
            "SB+mfence+po",
            &[&[A::W(0), A::F, A::R(1)], &[A::W(1), A::R(0)]],
        ),
        ("SB+rmws", &[&[A::U(0), A::R(1)], &[A::U(1), A::R(0)]]),
        (
            "MP+mfences",
            &[&[A::W(0), A::F, A::W(1)], &[A::R(1), A::F, A::R(0)]],
        ),
        (
            "R+mfences",
            &[&[A::W(0), A::F, A::W(1)], &[A::W(1), A::F, A::R(0)]],
        ),
        (
            "LB+mfences",
            &[&[A::R(0), A::F, A::W(1)], &[A::R(1), A::F, A::W(0)]],
        ),
        // ---- Three-thread shapes ----
        (
            "WRC",
            &[&[A::W(0)], &[A::R(0), A::W(1)], &[A::R(1), A::R(0)]],
        ),
        (
            "WRC+mfences",
            &[
                &[A::W(0)],
                &[A::R(0), A::F, A::W(1)],
                &[A::R(1), A::F, A::R(0)],
            ],
        ),
        (
            "ISA2",
            &[
                &[A::W(0), A::W(1)],
                &[A::R(1), A::W(2)],
                &[A::R(2), A::R(0)],
            ],
        ),
        (
            "RWC",
            &[&[A::W(0)], &[A::R(0), A::R(1)], &[A::W(1), A::R(0)]],
        ),
        (
            "WWC",
            &[&[A::W(0)], &[A::R(0), A::W(1)], &[A::W(1), A::W(0)]],
        ),
        (
            "W+RWC",
            &[
                &[A::W(0), A::W(2)],
                &[A::R(2), A::R(1)],
                &[A::W(1), A::R(0)],
            ],
        ),
        (
            "Z6.3",
            &[
                &[A::W(0), A::W(1)],
                &[A::W(1), A::W(2)],
                &[A::W(2), A::R(0)],
            ],
        ),
        (
            "3.2W",
            &[
                &[A::W(0), A::W(1)],
                &[A::W(1), A::W(2)],
                &[A::W(2), A::W(0)],
            ],
        ),
        (
            "3.SB",
            &[
                &[A::W(0), A::R(1)],
                &[A::W(1), A::R(2)],
                &[A::W(2), A::R(0)],
            ],
        ),
        (
            "3.LB",
            &[
                &[A::R(0), A::W(1)],
                &[A::R(1), A::W(2)],
                &[A::R(2), A::W(0)],
            ],
        ),
        // ---- Four-thread shapes ----
        (
            "IRIW",
            &[
                &[A::W(0)],
                &[A::W(1)],
                &[A::R(0), A::R(1)],
                &[A::R(1), A::R(0)],
            ],
        ),
        (
            "IRIW+mfences",
            &[
                &[A::W(0)],
                &[A::W(1)],
                &[A::R(0), A::F, A::R(1)],
                &[A::R(1), A::F, A::R(0)],
            ],
        ),
        (
            "IRRWIW",
            &[
                &[A::W(0)],
                &[A::R(0), A::R(1)],
                &[A::W(1)],
                &[A::R(1), A::W(0)],
            ],
        ),
    ];
    let mut suite: Vec<LitmusTest> = shapes
        .iter()
        .map(|&(name, threads)| build(name, threads, l))
        .collect();

    // ---- Systematic two-thread enumeration (diy-style) ----
    // Every combination of {R, W} × {R, W} per thread over two locations,
    // skipping shapes already present under a classic name.
    let choices = [A::R(0), A::W(0)];
    let choices2 = [A::R(1), A::W(1)];
    for &a0 in &choices {
        for &a1 in &choices2 {
            for &b1 in &choices2 {
                for &b0 in &choices {
                    let name = format!("2T-{}{}-{}{}", short(a0), short(a1), short(b1), short(b0));
                    suite.push(build(&name, &[&[a0, a1], &[b1, b0]], l));
                }
            }
        }
    }

    suite
}

fn short(a: A) -> String {
    match a {
        A::R(l) => format!("R{l}"),
        A::W(l) => format!("W{l}"),
        A::U(l) => format!("U{l}"),
        A::F => "F".to_string(),
    }
}

/// Repeats a test's per-thread programs `times` times (concatenation).
///
/// The diy litmus runner executes each test body in a tight loop (its `-s`
/// size parameter is in the thousands); repeating the body within one test
/// reproduces that behaviour: consecutive instances of the shape overlap in
/// the pipeline and memory system, which is what gives the short shapes a
/// realistic chance of hitting a timing window.
pub fn repeat_test(test: &Test, times: usize) -> Test {
    let times = times.max(1);
    let mut genes = Vec::with_capacity(test.len() * times);
    for _ in 0..times {
        genes.extend_from_slice(test.genes());
    }
    Test::new(genes, test.num_threads())
}

/// Convenience: the suite over three line-separated default addresses.
pub fn default_suite() -> Vec<LitmusTest> {
    x86_tso_suite(&[Address(0x10_0000), Address(0x10_0040), Address(0x10_0080)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_at_least_38_tests() {
        let suite = default_suite();
        assert!(suite.len() >= 38, "only {} litmus tests", suite.len());
    }

    #[test]
    fn classic_shapes_are_present_and_well_formed() {
        let suite = default_suite();
        for name in ["SB", "MP", "LB", "IRIW", "WRC", "2+2W", "SB+mfences"] {
            let t = suite
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(t.test.len() >= 2);
            assert!(t.test.num_threads() >= 1);
        }
    }

    #[test]
    fn mp_shape_has_expected_structure() {
        let suite = default_suite();
        let mp = suite.iter().find(|t| t.name == "MP").unwrap();
        assert_eq!(mp.test.num_threads(), 2);
        let t0 = mp.test.thread_ops(0);
        let t1 = mp.test.thread_ops(1);
        assert_eq!(t0.len(), 2);
        assert!(t0.iter().all(|op| op.kind == OpKind::Write));
        assert_eq!(t1.len(), 2);
        assert!(t1.iter().all(|op| op.kind == OpKind::Read));
        // Reads in the opposite order of the writes (flag first).
        assert_eq!(t1[0].addr, t0[1].addr);
        assert_eq!(t1[1].addr, t0[0].addr);
    }

    #[test]
    fn iriw_uses_four_threads() {
        let suite = default_suite();
        let iriw = suite.iter().find(|t| t.name == "IRIW").unwrap();
        assert_eq!(iriw.test.num_threads(), 4);
        assert_eq!(iriw.test.ops_per_thread(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn fence_variants_contain_fences() {
        let suite = default_suite();
        let fenced = suite.iter().find(|t| t.name == "MP+mfences").unwrap();
        assert!(fenced
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::Fence));
        let rmw = suite.iter().find(|t| t.name == "SB+rmws").unwrap();
        assert!(rmw
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::ReadModifyWrite));
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = default_suite();
        let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate litmus names");
    }

    #[test]
    #[should_panic(expected = "at least 3 locations")]
    fn too_few_locations_rejected() {
        x86_tso_suite(&[Address(0x100)]);
    }

    #[test]
    fn repeat_test_concatenates_thread_programs() {
        let suite = default_suite();
        let mp = suite.iter().find(|t| t.name == "MP").unwrap();
        let repeated = repeat_test(&mp.test, 5);
        assert_eq!(repeated.len(), mp.test.len() * 5);
        assert_eq!(repeated.num_threads(), mp.test.num_threads());
        assert_eq!(
            repeated.thread_ops(0).len(),
            mp.test.thread_ops(0).len() * 5
        );
        // Repeating once (or zero times) is the identity.
        assert_eq!(repeat_test(&mp.test, 1).genes(), mp.test.genes());
        assert_eq!(repeat_test(&mp.test, 0).genes(), mp.test.genes());
    }

    #[test]
    fn addresses_come_from_the_provided_locations() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        let suite = x86_tso_suite(&locs);
        for t in &suite {
            for g in t.test.genes() {
                if g.op.is_memop() {
                    assert!(locs.contains(&g.op.addr), "{} uses {}", t.name, g.op.addr);
                }
            }
        }
    }
}
