//! The diy-style litmus corpora (the non-GP baseline, §5.2.2).
//!
//! The diy tool generates short tests from critical cycles of the target
//! model.  This module provides two corpora:
//!
//! * the **hand-written golden suites** — the classic named x86-TSO shapes
//!   ([`x86_tso_suite`]: SB, MP, LB, S, R, 2+2W, fence/RMW variants, WRC,
//!   ISA2, IRIW, …, 38+ tests matching the paper's "all 38 tests available"),
//!   the flavoured weak shapes ([`handwritten_weak_suite_flavoured`]) and the
//!   acquire probe ([`acquire_suite`]).  These are kept verbatim as the
//!   reference the enumerator conformance tests compare against, and as the
//!   `MCVERSI_LITMUS=handpicked` corpus ([`handpicked_suite_for`]);
//! * the **auto-enumerated corpus** ([`crate::enumerate`]) — critical cycles
//!   walked mechanically over the relaxation-edge vocabulary.  The default
//!   campaign suites ([`suite_for`], [`weak_suite_flavoured`], [`weak_suite`])
//!   are thin filters over it: `suite_for` orders the whole corpus with the
//!   target model's forbidden cycles first, `weak_suite_flavoured` selects
//!   the classic flavoured names from it.
//!
//! Unlike diy's self-checking tests (which encode one forbidden outcome), the
//! McVerSi checker validates every observed execution against the full
//! axiomatic model, which is strictly stronger; the role of the suite — short
//! shaped tests exercising the critical cycles — is preserved, and each
//! enumerated test additionally carries its forbidden outcome and expected
//! per-model verdict ([`crate::enumerate::EnumeratedTest`]).

use crate::enumerate::{self, EnumerationBounds};
use crate::ops::{Op, OpKind};
use crate::test::{Gene, Test};
use mcversi_mcm::{Address, DepKind, FenceKind, ModelKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named litmus test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusTest {
    /// The conventional name of the shape (e.g. `"SB"`, `"IRIW"`).
    pub name: String,
    /// The test body.
    pub test: Test,
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.test)
    }
}

/// Shorthand for building per-thread op lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum A {
    /// Read location `usize`.
    R(usize),
    /// Read location `usize` with an address dependency on the previous read.
    D(usize),
    /// Write location `usize`.
    W(usize),
    /// Write location `usize` with a data dependency on the previous read.
    Wd(usize),
    /// Write location `usize` with a control dependency on the previous read.
    Wc(usize),
    /// Atomic RMW on location `usize`.
    U(usize),
    /// Full fence.
    F,
    /// A fence of the given flavour.
    Fl(FenceKind),
}

impl A {
    /// The dependent-write shorthand for a dependency flavour (`Data` and
    /// `Ctrl` are write-borne; `Addr` has no write form and is rejected by
    /// [`weak_suite_flavoured`] before this is reached).
    fn dep_write(dep: DepKind, loc: usize) -> A {
        match dep {
            DepKind::Data => A::Wd(loc),
            DepKind::Ctrl => A::Wc(loc),
            DepKind::Addr => unreachable!("write-borne dependencies are data or ctrl"),
        }
    }
}

/// Builds a litmus test from per-thread access lists over numbered locations.
fn build(name: &str, threads: &[&[A]], locations: &[Address]) -> LitmusTest {
    let num_threads = threads.len();
    let mut genes = Vec::new();
    // Interleave the threads' operations round-robin so the flat list mixes
    // threads (the order within each thread is preserved, which is all that
    // matters for program order).
    let max_len = threads.iter().map(|t| t.len()).max().unwrap_or(0);
    for slot in 0..max_len {
        for (pid, thread) in threads.iter().enumerate() {
            if let Some(access) = thread.get(slot) {
                let op = match access {
                    A::R(l) => Op::new(OpKind::Read, locations[*l]),
                    A::D(l) => Op::new(OpKind::ReadAddrDp, locations[*l]),
                    A::W(l) => Op::new(OpKind::Write, locations[*l]),
                    A::Wd(l) => Op::new(OpKind::WriteDataDp, locations[*l]),
                    A::Wc(l) => Op::new(OpKind::WriteCtrlDp, locations[*l]),
                    A::U(l) => Op::new(OpKind::ReadModifyWrite, locations[*l]),
                    A::F => Op::new(OpKind::Fence, Address(0)),
                    A::Fl(kind) => Op::new(
                        OpKind::for_fence(*kind).expect("litmus fences have op kinds"),
                        Address(0),
                    ),
                };
                genes.push(Gene {
                    pid: pid as u32,
                    op,
                });
            }
        }
    }
    LitmusTest {
        name: name.to_string(),
        test: Test::new(genes, num_threads),
    }
}

/// Generates the full x86-TSO litmus suite over the given location addresses.
///
/// At least three distinct addresses must be provided (tests use up to three
/// locations); the same suite shape is produced regardless of the concrete
/// addresses.
///
/// # Panics
///
/// Panics if fewer than three addresses are supplied.
pub fn x86_tso_suite(locations: &[Address]) -> Vec<LitmusTest> {
    assert!(
        locations.len() >= 3,
        "litmus suite needs at least 3 locations"
    );
    let l = locations;
    let shapes: &[(&str, &[&[A]])] = &[
        // ---- Classic named two-thread shapes ----
        ("SB", &[&[A::W(0), A::R(1)], &[A::W(1), A::R(0)]]),
        ("MP", &[&[A::W(0), A::W(1)], &[A::R(1), A::R(0)]]),
        ("LB", &[&[A::R(0), A::W(1)], &[A::R(1), A::W(0)]]),
        ("S", &[&[A::W(0), A::W(1)], &[A::R(1), A::W(0)]]),
        ("R", &[&[A::W(0), A::W(1)], &[A::W(1), A::R(0)]]),
        ("2+2W", &[&[A::W(0), A::W(1)], &[A::W(1), A::W(0)]]),
        ("CoRR", &[&[A::W(0)], &[A::R(0), A::R(0)]]),
        ("CoWW", &[&[A::W(0), A::W(0)]]),
        ("CoRW", &[&[A::R(0), A::W(0)], &[A::W(0)]]),
        ("CoWR", &[&[A::W(0), A::R(0)], &[A::W(0)]]),
        // ---- Fence / locked variants ----
        (
            "SB+mfences",
            &[&[A::W(0), A::F, A::R(1)], &[A::W(1), A::F, A::R(0)]],
        ),
        (
            "SB+mfence+po",
            &[&[A::W(0), A::F, A::R(1)], &[A::W(1), A::R(0)]],
        ),
        ("SB+rmws", &[&[A::U(0), A::R(1)], &[A::U(1), A::R(0)]]),
        (
            "MP+mfences",
            &[&[A::W(0), A::F, A::W(1)], &[A::R(1), A::F, A::R(0)]],
        ),
        (
            "R+mfences",
            &[&[A::W(0), A::F, A::W(1)], &[A::W(1), A::F, A::R(0)]],
        ),
        (
            "LB+mfences",
            &[&[A::R(0), A::F, A::W(1)], &[A::R(1), A::F, A::W(0)]],
        ),
        // ---- Three-thread shapes ----
        (
            "WRC",
            &[&[A::W(0)], &[A::R(0), A::W(1)], &[A::R(1), A::R(0)]],
        ),
        (
            "WRC+mfences",
            &[
                &[A::W(0)],
                &[A::R(0), A::F, A::W(1)],
                &[A::R(1), A::F, A::R(0)],
            ],
        ),
        (
            "ISA2",
            &[
                &[A::W(0), A::W(1)],
                &[A::R(1), A::W(2)],
                &[A::R(2), A::R(0)],
            ],
        ),
        (
            "RWC",
            &[&[A::W(0)], &[A::R(0), A::R(1)], &[A::W(1), A::R(0)]],
        ),
        (
            "WWC",
            &[&[A::W(0)], &[A::R(0), A::W(1)], &[A::W(1), A::W(0)]],
        ),
        (
            "W+RWC",
            &[
                &[A::W(0), A::W(2)],
                &[A::R(2), A::R(1)],
                &[A::W(1), A::R(0)],
            ],
        ),
        (
            "Z6.3",
            &[
                &[A::W(0), A::W(1)],
                &[A::W(1), A::W(2)],
                &[A::W(2), A::R(0)],
            ],
        ),
        (
            "3.2W",
            &[
                &[A::W(0), A::W(1)],
                &[A::W(1), A::W(2)],
                &[A::W(2), A::W(0)],
            ],
        ),
        (
            "3.SB",
            &[
                &[A::W(0), A::R(1)],
                &[A::W(1), A::R(2)],
                &[A::W(2), A::R(0)],
            ],
        ),
        (
            "3.LB",
            &[
                &[A::R(0), A::W(1)],
                &[A::R(1), A::W(2)],
                &[A::R(2), A::W(0)],
            ],
        ),
        // ---- Four-thread shapes ----
        (
            "IRIW",
            &[
                &[A::W(0)],
                &[A::W(1)],
                &[A::R(0), A::R(1)],
                &[A::R(1), A::R(0)],
            ],
        ),
        (
            "IRIW+mfences",
            &[
                &[A::W(0)],
                &[A::W(1)],
                &[A::R(0), A::F, A::R(1)],
                &[A::R(1), A::F, A::R(0)],
            ],
        ),
        (
            "IRRWIW",
            &[
                &[A::W(0)],
                &[A::R(0), A::R(1)],
                &[A::W(1)],
                &[A::R(1), A::W(0)],
            ],
        ),
    ];
    let mut suite: Vec<LitmusTest> = shapes
        .iter()
        .map(|&(name, threads)| build(name, threads, l))
        .collect();

    // ---- Systematic two-thread enumeration (diy-style) ----
    // Every combination of {R, W} × {R, W} per thread over two locations,
    // skipping shapes already present under a classic name.
    let choices = [A::R(0), A::W(0)];
    let choices2 = [A::R(1), A::W(1)];
    for &a0 in &choices {
        for &a1 in &choices2 {
            for &b1 in &choices2 {
                for &b0 in &choices {
                    let name = format!("2T-{}{}-{}{}", short(a0), short(a1), short(b1), short(b0));
                    suite.push(build(&name, &[&[a0, a1], &[b1, b0]], l));
                }
            }
        }
    }

    suite
}

fn short(a: A) -> String {
    match a {
        A::R(l) => format!("R{l}"),
        A::D(l) => format!("D{l}"),
        A::W(l) => format!("W{l}"),
        A::Wd(l) => format!("Wd{l}"),
        A::Wc(l) => format!("Wc{l}"),
        A::U(l) => format!("U{l}"),
        A::F => "F".to_string(),
        A::Fl(k) => format!("F[{k}]"),
    }
}

/// The classic weak-model litmus shapes (`MP`, `LB`, `SB`, `WRC`, `IRIW`,
/// `S`), parameterized by the fence flavour used at the "strong" sites and
/// the dependency flavour carried by the dependent writes — selected by
/// canonical name from the enumerated corpus (a thin filter over
/// [`crate::enumerate::enumerate`]).
///
/// Dependent *reads* always use address dependencies (the only read-borne
/// flavour); `write_dep` selects between data and control dependencies for
/// the dependent writes (`LB+deps`, `WRC`, `S`).  Names follow the herd
/// convention, with the fence's display name inline (e.g. `MP+lwsync+addr`).
/// [`handwritten_weak_suite_flavoured`] builds the same seventeen shapes by
/// hand and is pinned equal by the corpus conformance tests.
///
/// # Panics
///
/// Panics if fewer than three locations are supplied, if `fence` has no
/// operation form ([`FenceKind::StoreStore`] / [`FenceKind::LoadLoad`] exist
/// only as checker-level event kinds), or if `write_dep` is
/// [`DepKind::Addr`] (address dependencies are read-borne; pick `Data` or
/// `Ctrl` for the dependent writes).
pub fn weak_suite_flavoured(
    locations: &[Address],
    fence: FenceKind,
    write_dep: DepKind,
) -> Vec<LitmusTest> {
    assert!(
        locations.len() >= 3,
        "litmus suite needs at least 3 locations"
    );
    assert!(
        OpKind::for_fence(fence).is_some(),
        "fence flavour {fence} has no test-operation form"
    );
    assert!(
        write_dep != DepKind::Addr,
        "write-borne dependencies are data or ctrl"
    );
    let f = fence.to_string();
    let d = write_dep.to_string();
    let names = [
        "MP".to_string(),
        "MP+addr".to_string(),
        format!("MP+{f}+addr"),
        format!("MP+{f}s"),
        "LB".to_string(),
        format!("LB+{d}s"),
        format!("LB+{f}s"),
        "SB".to_string(),
        format!("SB+{f}s"),
        "WRC".to_string(),
        format!("WRC+{d}+addr"),
        format!("WRC+{f}+addr"),
        "IRIW".to_string(),
        "IRIW+addrs".to_string(),
        format!("IRIW+{f}s"),
        "S".to_string(),
        format!("S+{f}+{d}"),
    ];
    select_by_name(&names, locations)
}

/// Selects tests from the default-bound enumerated corpus by canonical name.
///
/// # Panics
///
/// Panics when a requested name is not in the corpus — a filter asking for a
/// shape the enumerator cannot produce is a bug, not a fallback case.
fn select_by_name(names: &[String], locations: &[Address]) -> Vec<LitmusTest> {
    let corpus = enumerate::enumerate(&EnumerationBounds::default());
    names
        .iter()
        .map(|name| {
            corpus
                .iter()
                .find(|t| &t.name == name)
                .unwrap_or_else(|| panic!("enumerated corpus lacks shape {name}"))
                .litmus(locations)
        })
        .collect()
}

/// The hand-written golden reference of [`weak_suite_flavoured`]: the same
/// seventeen flavoured shapes, spelled out access by access.  The corpus
/// conformance tests assert the enumerator regenerates every one of them
/// (matched by canonical name, with identical thread structure).
///
/// # Panics
///
/// Same contract as [`weak_suite_flavoured`].
pub fn handwritten_weak_suite_flavoured(
    locations: &[Address],
    fence: FenceKind,
    write_dep: DepKind,
) -> Vec<LitmusTest> {
    assert!(
        locations.len() >= 3,
        "litmus suite needs at least 3 locations"
    );
    assert!(
        OpKind::for_fence(fence).is_some(),
        "fence flavour {fence} has no test-operation form"
    );
    assert!(
        write_dep != DepKind::Addr,
        "write-borne dependencies are data or ctrl"
    );
    let l = locations;
    let f = A::Fl(fence);
    let wd = |loc: usize| A::dep_write(write_dep, loc);
    let fname = fence.to_string();
    let dname = write_dep.to_string();
    let named = |shape: &str, parts: &[&str]| -> String {
        let mut name = shape.to_string();
        for part in parts {
            name.push('+');
            name.push_str(part);
        }
        name
    };

    let shapes: Vec<(String, Vec<Vec<A>>)> = vec![
        // ---- Message passing ----
        (
            "MP".into(),
            vec![vec![A::W(0), A::W(1)], vec![A::R(1), A::R(0)]],
        ),
        (
            named("MP", &["addr"]),
            vec![vec![A::W(0), A::W(1)], vec![A::R(1), A::D(0)]],
        ),
        (
            named("MP", &[&fname, "addr"]),
            vec![vec![A::W(0), f, A::W(1)], vec![A::R(1), A::D(0)]],
        ),
        (
            named("MP", &[&format!("{fname}s")]),
            vec![vec![A::W(0), f, A::W(1)], vec![A::R(1), f, A::R(0)]],
        ),
        // ---- Load buffering ----
        (
            "LB".into(),
            vec![vec![A::R(0), A::W(1)], vec![A::R(1), A::W(0)]],
        ),
        (
            named("LB", &[&format!("{dname}s")]),
            vec![vec![A::R(0), wd(1)], vec![A::R(1), wd(0)]],
        ),
        (
            named("LB", &[&format!("{fname}s")]),
            vec![vec![A::R(0), f, A::W(1)], vec![A::R(1), f, A::W(0)]],
        ),
        // ---- Store buffering ----
        (
            "SB".into(),
            vec![vec![A::W(0), A::R(1)], vec![A::W(1), A::R(0)]],
        ),
        (
            named("SB", &[&format!("{fname}s")]),
            vec![vec![A::W(0), f, A::R(1)], vec![A::W(1), f, A::R(0)]],
        ),
        // ---- Write-to-read causality ----
        (
            "WRC".into(),
            vec![
                vec![A::W(0)],
                vec![A::R(0), A::W(1)],
                vec![A::R(1), A::R(0)],
            ],
        ),
        (
            named("WRC", &[&dname, "addr"]),
            vec![vec![A::W(0)], vec![A::R(0), wd(1)], vec![A::R(1), A::D(0)]],
        ),
        (
            named("WRC", &[&fname, "addr"]),
            vec![
                vec![A::W(0)],
                vec![A::R(0), f, A::W(1)],
                vec![A::R(1), A::D(0)],
            ],
        ),
        // ---- Independent reads of independent writes ----
        (
            "IRIW".into(),
            vec![
                vec![A::W(0)],
                vec![A::W(1)],
                vec![A::R(0), A::R(1)],
                vec![A::R(1), A::R(0)],
            ],
        ),
        (
            named("IRIW", &["addrs"]),
            vec![
                vec![A::W(0)],
                vec![A::W(1)],
                vec![A::R(0), A::D(1)],
                vec![A::R(1), A::D(0)],
            ],
        ),
        (
            named("IRIW", &[&format!("{fname}s")]),
            vec![
                vec![A::W(0)],
                vec![A::W(1)],
                vec![A::R(0), f, A::R(1)],
                vec![A::R(1), f, A::R(0)],
            ],
        ),
        // ---- Store-to-read causality (S) ----
        (
            "S".into(),
            vec![vec![A::W(0), A::W(1)], vec![A::R(1), A::W(0)]],
        ),
        (
            named("S", &[&fname, &dname]),
            vec![vec![A::W(0), f, A::W(1)], vec![A::R(1), wd(0)]],
        ),
    ];

    shapes
        .into_iter()
        .map(|(name, threads)| {
            let views: Vec<&[A]> = threads.iter().map(|t| t.as_slice()).collect();
            build(&name, &views, l)
        })
        .collect()
}

/// Mixed-flavour message passing: a full fence on the writer side and an
/// acquire fence on the reader side (`MP+mfence+acq`).
///
/// This is the shape that distinguishes an acquire fence that flushes the
/// load queue from one that does not (the `Fence+no-acquire` injected bug):
/// the writer's cumulative fence orders the data before the flag everywhere,
/// so a stale data read can only come from the reader's loads performing out
/// of order *through* the acquire fence.  Only models that give acquire
/// fences ordering semantics (the ARM-ish one) forbid the weak outcome.
///
/// # Panics
///
/// Panics if fewer than two locations are supplied.
pub fn acquire_suite(locations: &[Address]) -> Vec<LitmusTest> {
    assert!(
        locations.len() >= 2,
        "acquire suite needs at least 2 locations"
    );
    vec![build(
        "MP+mfence+acq",
        &[
            &[A::W(0), A::Fl(FenceKind::Full), A::W(1)],
            &[A::R(1), A::Fl(FenceKind::Acquire), A::R(0)],
        ],
        locations,
    )]
}

/// The combined weak-model corpus: the flavoured shapes instantiated for the
/// full fence with data-dependent writes, the `lwsync` flavour, and the
/// release flavour with control-dependent writes, plus the mixed
/// acquire-flavoured MP shape, deduplicated by name.
pub fn weak_suite(locations: &[Address]) -> Vec<LitmusTest> {
    let mut suite = weak_suite_flavoured(locations, FenceKind::Full, DepKind::Data);
    suite.extend(weak_suite_flavoured(
        locations,
        FenceKind::LightweightSync,
        DepKind::Data,
    ));
    suite.extend(weak_suite_flavoured(
        locations,
        FenceKind::Release,
        DepKind::Ctrl,
    ));
    suite.extend(acquire_suite(locations));
    dedup_by_name(suite)
}

/// The fence/dependency flavours a relaxed model's suite instantiates the
/// weak shapes with (empty for the strong models).
pub fn model_flavours(model: ModelKind) -> &'static [(FenceKind, DepKind)] {
    match model {
        ModelKind::Sc | ModelKind::Tso => &[],
        ModelKind::Armish => &[
            (FenceKind::Full, DepKind::Data),
            (FenceKind::Release, DepKind::Ctrl),
        ],
        ModelKind::Powerish => &[
            (FenceKind::Full, DepKind::Data),
            (FenceKind::LightweightSync, DepKind::Data),
        ],
        ModelKind::Rmo => &[
            (FenceKind::Full, DepKind::Data),
            (FenceKind::Full, DepKind::Ctrl),
        ],
    }
}

/// The single-location coherence anchors (`CoRR`, `CoWW`, `CoRW`, `CoWR`).
///
/// These are the cycles of `po-loc ∪ com` — outside the critical-cycle
/// vocabulary (their communication edges can stay inside one thread), but
/// forbidden under *every* model by the sc-per-location axiom, so they anchor
/// the enumerated suites: any corpus family starts with them.
///
/// # Panics
///
/// Panics if no location is supplied.
pub fn coherence_suite(locations: &[Address]) -> Vec<LitmusTest> {
    assert!(!locations.is_empty(), "coherence suite needs a location");
    let l = locations;
    vec![
        build("CoRR", &[&[A::W(0)], &[A::R(0), A::R(0)]], l),
        build("CoWW", &[&[A::W(0), A::W(0)]], l),
        build("CoRW", &[&[A::R(0), A::W(0)], &[A::W(0)]], l),
        build("CoWR", &[&[A::W(0), A::R(0)], &[A::W(0)]], l),
    ]
}

/// The litmus corpus for a target model over the given locations: the
/// coherence anchors followed by the *entire enumerated corpus* at the
/// default bound, with the cycles whose weak outcome the model **forbids**
/// first (see [`suite_for_bounded`]).
///
/// A campaign's test-run budget may be far smaller than the corpus, and the
/// forbidden cycles are the discriminating ones — the shapes a bug in the
/// model's ordering machinery hides behind — so the diy round-robin reaches
/// them before the architecturally-allowed remainder.
pub fn suite_for(model: ModelKind, locations: &[Address]) -> Vec<LitmusTest> {
    suite_for_bounded(model, locations, &EnumerationBounds::default())
}

/// [`suite_for_bounded`] behind a shared per-(model, bounds, locations)
/// cache: campaign samples re-create their litmus test sources with
/// identical parameters, and lowering the whole corpus (~2000 tests at the
/// default bound) per sample would dominate small-budget start-up.
pub fn shared_suite_for_bounded(
    model: ModelKind,
    locations: &[Address],
    bounds: &EnumerationBounds,
) -> std::sync::Arc<Vec<LitmusTest>> {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type Key = (ModelKind, EnumerationBounds, Vec<Address>);
    static CACHE: OnceLock<Mutex<BTreeMap<Key, Arc<Vec<LitmusTest>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (model, bounds.clone(), locations.to_vec());
    let mut cache = cache.lock().expect("suite cache lock");
    if let Some(hit) = cache.get(&key) {
        return Arc::clone(hit);
    }
    let suite = Arc::new(suite_for_bounded(model, locations, bounds));
    cache.insert(key, Arc::clone(&suite));
    suite
}

/// [`suite_for`] over an explicit enumeration bound (the
/// `MCVERSI_LITMUS=enumerated:<threads>x<edges>` axis).
///
/// Ordering is deterministic: coherence anchors, then the model-forbidden
/// cycles, then the allowed ones; within each group the corpus order (thread
/// count, edge count, flavour count, name) puts small plain shapes first.
pub fn suite_for_bounded(
    model: ModelKind,
    locations: &[Address],
    bounds: &EnumerationBounds,
) -> Vec<LitmusTest> {
    let corpus = enumerate::enumerate(bounds);
    // Cycles at larger bounds may use more locations than the caller
    // provides; extend with line-separated addresses past the last one.
    let mut locs = locations.to_vec();
    let needed = corpus
        .iter()
        .map(|t| t.cycle.num_locations())
        .max()
        .unwrap_or(0);
    let top = locs.iter().map(|a| a.0).max().unwrap_or(0x10_0000);
    for extra in 0..needed.saturating_sub(locs.len()) {
        locs.push(Address(top + 0x40 * (extra as u64 + 1)));
    }

    let mut suite = coherence_suite(&locs);
    let (forbidden, allowed): (Vec<_>, Vec<_>) =
        corpus.iter().partition(|t| t.forbidden_under(model));
    suite.extend(forbidden.iter().map(|t| t.litmus(&locs)));
    suite.extend(allowed.iter().map(|t| t.litmus(&locs)));
    dedup_by_name(suite)
}

/// The original hand-picked corpus (`MCVERSI_LITMUS=handpicked`): the x86-TSO
/// suite for the strong models, extended with the model's natural weak-shape
/// flavours (see [`model_flavours`]) for the relaxed ones, weak shapes first.
pub fn handpicked_suite_for(model: ModelKind, locations: &[Address]) -> Vec<LitmusTest> {
    let mut suite = Vec::new();
    for &(fence, dep) in model_flavours(model) {
        suite.extend(handwritten_weak_suite_flavoured(locations, fence, dep));
    }
    if model == ModelKind::Armish {
        // The only model with acquire-fence semantics also tests them.
        suite.extend(acquire_suite(locations));
    }
    suite.extend(x86_tso_suite(locations));
    dedup_by_name(suite)
}

/// [`suite_for`] over the three default line-separated addresses.
pub fn default_suite_for(model: ModelKind) -> Vec<LitmusTest> {
    suite_for(
        model,
        &[Address(0x10_0000), Address(0x10_0040), Address(0x10_0080)],
    )
}

/// Removes tests whose name already appeared earlier in the list.
fn dedup_by_name(suite: Vec<LitmusTest>) -> Vec<LitmusTest> {
    let mut seen = std::collections::BTreeSet::new();
    suite
        .into_iter()
        .filter(|t| seen.insert(t.name.clone()))
        .collect()
}

/// Repeats a test's per-thread programs `times` times (concatenation).
///
/// The diy litmus runner executes each test body in a tight loop (its `-s`
/// size parameter is in the thousands); repeating the body within one test
/// reproduces that behaviour: consecutive instances of the shape overlap in
/// the pipeline and memory system, which is what gives the short shapes a
/// realistic chance of hitting a timing window.
pub fn repeat_test(test: &Test, times: usize) -> Test {
    let times = times.max(1);
    let mut genes = Vec::with_capacity(test.len() * times);
    for _ in 0..times {
        genes.extend_from_slice(test.genes());
    }
    Test::new(genes, test.num_threads())
}

/// Convenience: the suite over three line-separated default addresses.
pub fn default_suite() -> Vec<LitmusTest> {
    x86_tso_suite(&[Address(0x10_0000), Address(0x10_0040), Address(0x10_0080)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_at_least_38_tests() {
        let suite = default_suite();
        assert!(suite.len() >= 38, "only {} litmus tests", suite.len());
    }

    #[test]
    fn classic_shapes_are_present_and_well_formed() {
        let suite = default_suite();
        for name in ["SB", "MP", "LB", "IRIW", "WRC", "2+2W", "SB+mfences"] {
            let t = suite
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(t.test.len() >= 2);
            assert!(t.test.num_threads() >= 1);
        }
    }

    #[test]
    fn mp_shape_has_expected_structure() {
        let suite = default_suite();
        let mp = suite.iter().find(|t| t.name == "MP").unwrap();
        assert_eq!(mp.test.num_threads(), 2);
        let t0 = mp.test.thread_ops(0);
        let t1 = mp.test.thread_ops(1);
        assert_eq!(t0.len(), 2);
        assert!(t0.iter().all(|op| op.kind == OpKind::Write));
        assert_eq!(t1.len(), 2);
        assert!(t1.iter().all(|op| op.kind == OpKind::Read));
        // Reads in the opposite order of the writes (flag first).
        assert_eq!(t1[0].addr, t0[1].addr);
        assert_eq!(t1[1].addr, t0[0].addr);
    }

    #[test]
    fn iriw_uses_four_threads() {
        let suite = default_suite();
        let iriw = suite.iter().find(|t| t.name == "IRIW").unwrap();
        assert_eq!(iriw.test.num_threads(), 4);
        assert_eq!(iriw.test.ops_per_thread(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn fence_variants_contain_fences() {
        let suite = default_suite();
        let fenced = suite.iter().find(|t| t.name == "MP+mfences").unwrap();
        assert!(fenced
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::Fence));
        let rmw = suite.iter().find(|t| t.name == "SB+rmws").unwrap();
        assert!(rmw
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::ReadModifyWrite));
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = default_suite();
        let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate litmus names");
    }

    #[test]
    #[should_panic(expected = "at least 3 locations")]
    fn too_few_locations_rejected() {
        x86_tso_suite(&[Address(0x100)]);
    }

    #[test]
    fn repeat_test_concatenates_thread_programs() {
        let suite = default_suite();
        let mp = suite.iter().find(|t| t.name == "MP").unwrap();
        let repeated = repeat_test(&mp.test, 5);
        assert_eq!(repeated.len(), mp.test.len() * 5);
        assert_eq!(repeated.num_threads(), mp.test.num_threads());
        assert_eq!(
            repeated.thread_ops(0).len(),
            mp.test.thread_ops(0).len() * 5
        );
        // Repeating once (or zero times) is the identity.
        assert_eq!(repeat_test(&mp.test, 1).genes(), mp.test.genes());
        assert_eq!(repeat_test(&mp.test, 0).genes(), mp.test.genes());
    }

    #[test]
    fn weak_suite_contains_the_classic_shapes_with_flavours() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        let suite = weak_suite(&locs);
        for name in [
            "MP",
            "MP+addr",
            "MP+mfence+addr",
            "MP+lwsync+addr",
            "MP+mfences",
            "LB+datas",
            "LB+ctrls",
            "SB+mfences",
            "SB+lwsyncs",
            "WRC+data+addr",
            "IRIW+addrs",
            "IRIW+mfences",
            "S+mfence+data",
        ] {
            assert!(
                suite.iter().any(|t| t.name == name),
                "weak suite missing {name}"
            );
        }
        // Names are unique after deduplication.
        let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn dependent_variants_carry_dependency_ops() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        let suite = weak_suite_flavoured(&locs, FenceKind::LightweightSync, DepKind::Data);
        let mp_dep = suite.iter().find(|t| t.name == "MP+addr").unwrap();
        assert!(mp_dep
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::ReadAddrDp));
        let lb_dep = suite.iter().find(|t| t.name == "LB+datas").unwrap();
        assert_eq!(
            lb_dep
                .test
                .genes()
                .iter()
                .filter(|g| g.op.kind == OpKind::WriteDataDp)
                .count(),
            2
        );
        let mp_lw = suite.iter().find(|t| t.name == "MP+lwsync+addr").unwrap();
        assert!(mp_lw
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::FenceLw));
        let ctrl = weak_suite_flavoured(&locs, FenceKind::Full, DepKind::Ctrl);
        let lb_ctrl = ctrl.iter().find(|t| t.name == "LB+ctrls").unwrap();
        assert!(lb_ctrl
            .test
            .genes()
            .iter()
            .any(|g| g.op.kind == OpKind::WriteCtrlDp));
    }

    #[test]
    #[should_panic(expected = "no test-operation form")]
    fn weak_suite_rejects_event_only_fence_flavours() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        weak_suite_flavoured(&locs, FenceKind::StoreStore, DepKind::Data);
    }

    #[test]
    #[should_panic(expected = "data or ctrl")]
    fn weak_suite_rejects_addr_write_deps() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        weak_suite_flavoured(&locs, FenceKind::Full, DepKind::Addr);
    }

    #[test]
    fn per_model_default_suites_cover_the_corpus_forbidden_first() {
        use crate::enumerate::{enumerate, EnumerationBounds};
        let corpus_len = enumerate(&EnumerationBounds::default()).len();
        for model in ModelKind::ALL {
            let suite = default_suite_for(model);
            // Coherence anchors plus the whole enumerated corpus.
            assert_eq!(suite.len(), corpus_len + 4, "{model} suite size");
            let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
            let before = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), before, "{model} suite has duplicate names");
            assert!(suite.iter().any(|t| t.name == "MP+mfence+addr"));
            assert_eq!(suite[0].name, "CoRR", "coherence anchors lead the suite");
        }
        // Forbidden-first ordering: the first post-anchor tests of a relaxed
        // campaign exercise that model's critical cycles (`LB+datas`-style
        // shapes sit inside any realistic test-run budget), while the plain
        // TSO-only shapes front the TSO suite.
        let armish = default_suite_for(ModelKind::Armish);
        let pos = |suite: &[LitmusTest], name: &str| {
            suite
                .iter()
                .position(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert!(
            pos(&armish, "LB+datas") < 40,
            "LB+datas out of budget reach"
        );
        assert!(pos(&armish, "MP+mfence+acq") < 40);
        assert!(
            pos(&armish, "LB+datas") < pos(&armish, "MP"),
            "allowed MP sorts later"
        );
        let tso = default_suite_for(ModelKind::Tso);
        assert!(pos(&tso, "MP") < 10, "plain MP fronts the TSO suite");
        assert!(
            pos(&tso, "SB") > pos(&tso, "MP"),
            "TSO-allowed SB sorts later"
        );
        // The Power and ARM flavours stay reachable.
        assert!(default_suite_for(ModelKind::Powerish)
            .iter()
            .any(|t| t.name == "SB+lwsyncs"));
        assert!(default_suite_for(ModelKind::Armish)
            .iter()
            .any(|t| t.name == "MP+rel+addr"));
    }

    #[test]
    fn handpicked_suites_keep_the_original_composition() {
        let strong = handpicked_suite_for(ModelKind::Tso, &locs3());
        assert_eq!(strong.len(), x86_tso_suite(&locs3()).len());
        for model in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
            let suite = handpicked_suite_for(model, &locs3());
            assert!(
                suite.len() > strong.len(),
                "{model} handpicked suite should add weak shapes"
            );
            assert!(suite.iter().any(|t| t.name == "MP+mfence+addr"));
        }
        assert!(handpicked_suite_for(ModelKind::Armish, &locs3())
            .iter()
            .any(|t| t.name == "MP+rel+addr"));
    }

    fn locs3() -> [Address; 3] {
        [Address(0x1000), Address(0x2000), Address(0x3000)]
    }

    #[test]
    fn enumerated_and_handwritten_flavoured_suites_agree_by_name() {
        let locs = locs3();
        for (fence, dep) in [
            (FenceKind::Full, DepKind::Data),
            (FenceKind::LightweightSync, DepKind::Data),
            (FenceKind::Release, DepKind::Ctrl),
        ] {
            let enumerated = weak_suite_flavoured(&locs, fence, dep);
            let handwritten = handwritten_weak_suite_flavoured(&locs, fence, dep);
            let names = |suite: &[LitmusTest]| -> Vec<String> {
                suite.iter().map(|t| t.name.clone()).collect()
            };
            assert_eq!(
                names(&enumerated),
                names(&handwritten),
                "{fence}/{dep} flavour"
            );
        }
    }

    #[test]
    fn coherence_suite_is_the_sc_per_location_family() {
        let suite = coherence_suite(&locs3());
        let names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["CoRR", "CoWW", "CoRW", "CoWR"]);
        for t in &suite {
            // Single location throughout.
            assert_eq!(t.test.addresses().len(), 1, "{}", t.name);
        }
    }

    #[test]
    fn addresses_come_from_the_provided_locations() {
        let locs = [Address(0x1000), Address(0x2000), Address(0x3000)];
        let suite = x86_tso_suite(&locs);
        for t in &suite {
            for g in t.test.genes() {
                if g.op.is_memop() {
                    assert!(locs.contains(&g.op.addr), "{} uses {}", t.name, g.op.addr);
                }
            }
        }
    }
}
