//! The steady-state genetic-programming engine.
//!
//! McVerSi-ALL and McVerSi-Std.XO both use a steady-state GA with
//! tournament selection and a delete-oldest replacement strategy (paper
//! §5.2.1, following Vavak & Fogarty's result that steady-state GAs outperform
//! generational ones in non-stationary environments).  The engine is driven
//! externally: [`GpEngine::propose`] yields the next test to evaluate (an
//! unevaluated member of the initial population, or a freshly created child),
//! and [`GpEngine::report`] feeds back the evaluation (fitness plus the NDT
//! analysis whose fit addresses the selective crossover needs).
//!
//! The fitness itself is computed by the verification framework (coverage for
//! McVerSi-ALL; an equal-weight combination of coverage and normalised NDT for
//! McVerSi-Std.XO, whose crossover cannot exploit the fit-address information).

use crate::crossover::{selective_crossover_mutate, single_point_crossover_mutate};
use crate::ndt::NdtAnalysis;
use crate::params::TestGenParams;
use crate::random::RandomTestGenerator;
use crate::test::Test;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which crossover operator the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverMode {
    /// The paper's selective crossover (Algorithm 1) — McVerSi-ALL.
    Selective,
    /// Conventional single-point crossover — McVerSi-Std.XO.
    SinglePoint,
}

/// Identifier of a test managed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TestId(pub u64);

impl fmt::Display for TestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The result of evaluating one test-run, fed back to the engine.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The scalar fitness (coverage-based; see the framework crate).
    pub fitness: f64,
    /// The non-determinism analysis of the test-run.
    pub analysis: NdtAnalysis,
}

#[derive(Debug)]
struct Individual {
    test: Test,
    fitness: Option<f64>,
    analysis: NdtAnalysis,
    birth: u64,
}

/// The steady-state GP engine.
#[derive(Debug)]
pub struct GpEngine {
    params: TestGenParams,
    mode: CrossoverMode,
    generator: RandomTestGenerator,
    population: BTreeMap<TestId, Individual>,
    pending: BTreeMap<TestId, Individual>,
    next_id: u64,
    birth_counter: u64,
    children_created: u64,
}

impl GpEngine {
    /// Creates an engine with a freshly generated random initial population.
    pub fn new<R: Rng>(params: TestGenParams, mode: CrossoverMode, rng: &mut R) -> Self {
        let generator = RandomTestGenerator::new(params.clone());
        let mut engine = GpEngine {
            mode,
            generator,
            population: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_id: 0,
            birth_counter: 0,
            children_created: 0,
            params,
        };
        for _ in 0..engine.params.population_size {
            let test = engine.generator.generate(rng);
            engine.insert_population_member(test);
        }
        engine
    }

    fn alloc_id(&mut self) -> TestId {
        let id = TestId(self.next_id);
        self.next_id += 1;
        id
    }

    fn insert_population_member(&mut self, test: Test) -> TestId {
        let id = self.alloc_id();
        self.birth_counter += 1;
        self.population.insert(
            id,
            Individual {
                test,
                fitness: None,
                analysis: NdtAnalysis::empty(),
                birth: self.birth_counter,
            },
        );
        id
    }

    /// The engine's parameters.
    pub fn params(&self) -> &TestGenParams {
        &self.params
    }

    /// The crossover mode in use.
    pub fn mode(&self) -> CrossoverMode {
        self.mode
    }

    /// Number of individuals currently in the population.
    pub fn population_size(&self) -> usize {
        self.population.len()
    }

    /// Number of children created by crossover so far.
    pub fn children_created(&self) -> u64 {
        self.children_created
    }

    /// The best fitness in the population, if any individual has been
    /// evaluated.
    pub fn best_fitness(&self) -> Option<f64> {
        self.population
            .values()
            .filter_map(|i| i.fitness)
            .fold(None, |best, f| Some(best.map_or(f, |b: f64| b.max(f))))
    }

    /// The mean NDT over evaluated individuals (used for the §6.1 analysis of
    /// how the population's non-determinism evolves).
    pub fn mean_ndt(&self) -> f64 {
        let evaluated: Vec<f64> = self
            .population
            .values()
            .filter(|i| i.fitness.is_some())
            .map(|i| i.analysis.ndt)
            .collect();
        if evaluated.is_empty() {
            0.0
        } else {
            evaluated.iter().sum::<f64>() / evaluated.len() as f64
        }
    }

    /// Selects one parent by tournament selection over evaluated individuals.
    fn tournament<R: Rng>(&self, rng: &mut R) -> TestId {
        let evaluated: Vec<TestId> = self
            .population
            .iter()
            .filter(|(_, i)| i.fitness.is_some())
            .map(|(&id, _)| id)
            .collect();
        assert!(
            !evaluated.is_empty(),
            "tournament requires evaluated individuals"
        );
        let mut best: Option<(TestId, f64)> = None;
        for _ in 0..self.params.tournament_size.max(1) {
            let id = evaluated[rng.gen_range(0..evaluated.len())];
            let fitness = self.population[&id].fitness.expect("evaluated");
            if best.is_none_or(|(_, bf)| fitness > bf) {
                best = Some((id, fitness));
            }
        }
        best.expect("at least one candidate").0
    }

    /// Returns the next test to evaluate.
    ///
    /// While unevaluated members of the initial population remain, those are
    /// returned first; afterwards each call breeds a new child from two
    /// tournament-selected parents.
    pub fn propose<R: Rng>(&mut self, rng: &mut R) -> (TestId, Test) {
        if let Some((&id, ind)) = self.population.iter().find(|(_, i)| i.fitness.is_none()) {
            return (id, ind.test.clone());
        }
        // Breed a child.
        let p1 = self.tournament(rng);
        let p2 = self.tournament(rng);
        let parent1 = &self.population[&p1];
        let parent2 = &self.population[&p2];
        let child = if rng.gen_range(0.0..1.0) < self.params.crossover_probability {
            match self.mode {
                CrossoverMode::Selective => selective_crossover_mutate(
                    &parent1.test,
                    &parent2.test,
                    &parent1.analysis,
                    &parent2.analysis,
                    &self.params,
                    rng,
                ),
                CrossoverMode::SinglePoint => {
                    single_point_crossover_mutate(&parent1.test, &parent2.test, &self.params, rng)
                }
            }
        } else {
            parent1.test.clone()
        };
        self.children_created += 1;
        let id = self.alloc_id();
        self.birth_counter += 1;
        self.pending.insert(
            id,
            Individual {
                test: child.clone(),
                fitness: None,
                analysis: NdtAnalysis::empty(),
                birth: self.birth_counter,
            },
        );
        (id, child)
    }

    /// Feeds back the evaluation of a previously proposed test.
    ///
    /// Children enter the population using the delete-oldest replacement
    /// strategy; unknown ids are ignored (e.g. stale reports after a restart).
    pub fn report(&mut self, id: TestId, evaluation: Evaluation) {
        if let Some(ind) = self.population.get_mut(&id) {
            ind.fitness = Some(evaluation.fitness);
            ind.analysis = evaluation.analysis;
            return;
        }
        if let Some(mut ind) = self.pending.remove(&id) {
            ind.fitness = Some(evaluation.fitness);
            ind.analysis = evaluation.analysis;
            self.population.insert(id, ind);
            // Delete-oldest replacement keeps the population size constant.
            while self.population.len() > self.params.population_size {
                let oldest = self
                    .population
                    .iter()
                    .min_by_key(|(_, i)| i.birth)
                    .map(|(&id, _)| id)
                    .expect("population non-empty");
                self.population.remove(&oldest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eval(fitness: f64, ndt: f64) -> Evaluation {
        let mut analysis = NdtAnalysis::empty();
        analysis.ndt = ndt;
        Evaluation { fitness, analysis }
    }

    #[test]
    fn initial_population_is_proposed_before_breeding() {
        let params = TestGenParams::small();
        let mut rng = StdRng::seed_from_u64(1);
        let mut engine = GpEngine::new(params.clone(), CrossoverMode::Selective, &mut rng);
        assert_eq!(engine.population_size(), params.population_size);
        assert_eq!(engine.best_fitness(), None);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..params.population_size {
            let (id, test) = engine.propose(&mut rng);
            assert_eq!(test.len(), params.test_size);
            assert!(seen.insert(id) || seen.contains(&id));
            engine.report(id, eval(0.1, 1.0));
        }
        assert_eq!(engine.children_created(), 0);
        // Next proposal must be a bred child.
        let (_, child) = engine.propose(&mut rng);
        assert_eq!(child.len(), params.test_size);
        assert_eq!(engine.children_created(), 1);
    }

    #[test]
    fn children_replace_oldest_and_population_size_is_constant() {
        let params = TestGenParams::small();
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = GpEngine::new(params.clone(), CrossoverMode::Selective, &mut rng);
        // Evaluate the initial population.
        loop {
            let (id, _) = engine.propose(&mut rng);
            if engine.children_created() > 0 {
                // First child proposed: report it and stop.
                engine.report(id, eval(0.5, 2.0));
                break;
            }
            engine.report(id, eval(0.2, 1.0));
        }
        assert_eq!(engine.population_size(), params.population_size);
        // Keep breeding; the population size must stay constant.
        for i in 0..50 {
            let (id, _) = engine.propose(&mut rng);
            engine.report(id, eval(0.2 + (i as f64) * 0.001, 1.5));
            assert_eq!(engine.population_size(), params.population_size);
        }
        assert!(engine.children_created() >= 50);
        assert!(engine.best_fitness().unwrap() >= 0.2);
        assert!(engine.mean_ndt() > 0.0);
    }

    #[test]
    fn tournament_prefers_fitter_individuals() {
        let mut params = TestGenParams::small();
        params.population_size = 2;
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = GpEngine::new(params, CrossoverMode::SinglePoint, &mut rng);
        let (id1, _) = engine.propose(&mut rng);
        engine.report(id1, eval(0.9, 1.0));
        let (id2, _) = engine.propose(&mut rng);
        engine.report(id2, eval(0.1, 1.0));
        // With tournament size 2, drawing both candidates must select the
        // fitter one; over many draws the fitter parent dominates.
        let mut picks_of_fitter = 0;
        for _ in 0..200 {
            if engine.tournament(&mut rng) == id1 {
                picks_of_fitter += 1;
            }
        }
        assert!(
            picks_of_fitter > 120,
            "fitter parent picked {picks_of_fitter}/200"
        );
    }

    #[test]
    fn both_modes_produce_valid_children() {
        for mode in [CrossoverMode::Selective, CrossoverMode::SinglePoint] {
            let params = TestGenParams::small();
            let mut rng = StdRng::seed_from_u64(4);
            let mut engine = GpEngine::new(params.clone(), mode, &mut rng);
            for _ in 0..params.population_size {
                let (id, _) = engine.propose(&mut rng);
                engine.report(id, eval(0.3, 1.2));
            }
            let (_, child) = engine.propose(&mut rng);
            assert_eq!(child.len(), params.test_size);
            assert_eq!(child.num_threads(), params.num_threads);
            assert_eq!(engine.mode(), mode);
        }
    }

    #[test]
    fn unknown_report_is_ignored() {
        let params = TestGenParams::small();
        let mut rng = StdRng::seed_from_u64(5);
        let mut engine = GpEngine::new(params.clone(), CrossoverMode::Selective, &mut rng);
        engine.report(TestId(9999), eval(1.0, 1.0));
        assert_eq!(engine.population_size(), params.population_size);
        assert_eq!(engine.best_fitness(), None);
    }
}
