//! Test generation for memory consistency verification.
//!
//! This crate implements the paper's primary contribution (§3): the
//! representation of tests as chromosomes, the pseudo-random generator used to
//! seed (and to serve as the `McVerSi-RAND` baseline), the non-determinism
//! metrics NDT and NDe computed from observed conflict orders, the
//! *selective crossover* of Algorithm 1, a standard single-point crossover
//! (the `McVerSi-Std.XO` baseline), the steady-state genetic-programming
//! engine, and a diy-style litmus-test generator for x86-TSO (the non-GP
//! baseline).
//!
//! The crate is simulator-independent: it only depends on the axiomatic MCM
//! crate for event/address types and candidate executions.  Lowering a
//! [`Test`] to an executable program for a particular simulator is the job of
//! the framework crate (`mcversi-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crossover;
pub mod enumerate;
pub mod gp;
pub mod litmus;
pub mod ndt;
pub mod ops;
pub mod params;
pub mod random;
pub mod test;

pub use crossover::{selective_crossover_mutate, single_point_crossover_mutate};
pub use enumerate::{EnumeratedTest, EnumerationBounds, LitmusCorpus};
pub use gp::{CrossoverMode, Evaluation, GpEngine};
pub use ndt::{NdtAnalysis, RunConflicts};
pub use ops::{Op, OpKind};
pub use params::{OperationBias, TestGenParams};
pub use random::RandomTestGenerator;
pub use test::{Gene, Test};

#[cfg(test)]
mod smoke {
    use crate::{single_point_crossover_mutate, RandomTestGenerator, TestGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Crate-level smoke test: generation and one crossover.
    #[test]
    fn one_crossover() {
        let params = TestGenParams::small().with_test_size(16).with_threads(2);
        let generator = RandomTestGenerator::new(params.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let t1 = generator.generate(&mut rng);
        let t2 = generator.generate(&mut rng);
        let child = single_point_crossover_mutate(&t1, &t2, &params, &mut rng);
        assert_eq!(child.len(), 16);
        assert_eq!(child.num_threads(), t1.num_threads());
    }
}
