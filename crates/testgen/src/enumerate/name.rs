//! Herd-style canonical names for enumerated cycles.
//!
//! A cycle's name is its *base* (looked up from the skeleton: `MP`, `SB`,
//! `LB`, `S`, `R`, `2+2W`, `WRC`, `ISA2`, `RWC`, `WWC`, `W+RWC`, `Z6.3`,
//! `3.2W`, `3.SB`, `3.LB`, `IRIW`, `IRRWIW`, …; unnamed skeletons get a
//! systematic `"{threads}T.{edge tokens}"` spelling) plus a flavour suffix
//! over the internal edges in canonical order:
//!
//! * all plain → the base alone (`MP`);
//! * all the same non-plain flavour → pluralized (`MP+mfences`, `LB+datas`,
//!   `IRIW+addrs`);
//! * mixed → every flavour listed (`MP+mfence+addr`, `SB+mfence+po`), with
//!   plain entries elided when the non-plain flavours are all dependencies
//!   (`MP+addr`, not `MP+po+addr` — the dependency's typing already pins its
//!   position).
//!
//! The elision can in principle collide two distinct cycles onto one name;
//! [`assign_names`] detects that and falls back to the fully spelled form
//! for the colliding cycles, so names are always unique within a corpus.

use mcversi_mcm::cycle::{CriticalCycle, CycleEdge, Dir};
use std::collections::BTreeMap;

/// Builds the table of known skeletons, canonical-form → base name.
///
/// The cycles are spelled out with the same vocabulary the enumerator uses,
/// so the table doubles as executable documentation of the catalogue.
pub fn base_table() -> BTreeMap<CriticalCycle, &'static str> {
    use CycleEdge::{Fr, Po, Rf, Ws};
    use Dir::{R, W};
    let cycle = |edges: Vec<CycleEdge>, dirs: Vec<Dir>| {
        CriticalCycle::new(edges, dirs)
            .expect("catalogue shapes are valid")
            .canonicalize()
    };
    let mut table = BTreeMap::new();
    let mut put = |c: CriticalCycle, name: &'static str| {
        let previous = table.insert(c, name);
        debug_assert!(previous.is_none(), "duplicate catalogue skeleton {name}");
    };
    // ---- two threads ----
    put(cycle(vec![Po, Rf, Po, Fr], vec![W, W, R, R]), "MP");
    put(cycle(vec![Po, Fr, Po, Fr], vec![W, R, W, R]), "SB");
    put(cycle(vec![Po, Rf, Po, Rf], vec![R, W, R, W]), "LB");
    put(cycle(vec![Po, Rf, Po, Ws], vec![W, W, R, W]), "S");
    put(cycle(vec![Po, Ws, Po, Fr], vec![W, W, W, R]), "R");
    put(cycle(vec![Po, Ws, Po, Ws], vec![W, W, W, W]), "2+2W");
    // ---- three threads ----
    put(cycle(vec![Rf, Po, Rf, Po, Fr], vec![W, R, W, R, R]), "WRC");
    put(cycle(vec![Rf, Po, Fr, Po, Fr], vec![W, R, R, W, R]), "RWC");
    put(cycle(vec![Rf, Po, Ws, Po, Ws], vec![W, R, W, W, W]), "WWC");
    put(
        cycle(vec![Po, Rf, Po, Fr, Po, Fr], vec![W, W, R, R, W, R]),
        "W+RWC",
    );
    put(
        cycle(vec![Po, Rf, Po, Rf, Po, Fr], vec![W, W, R, W, R, R]),
        "ISA2",
    );
    put(
        cycle(vec![Po, Ws, Po, Ws, Po, Fr], vec![W, W, W, W, W, R]),
        "Z6.3",
    );
    put(
        cycle(vec![Po, Ws, Po, Ws, Po, Ws], vec![W, W, W, W, W, W]),
        "3.2W",
    );
    put(
        cycle(vec![Po, Fr, Po, Fr, Po, Fr], vec![W, R, W, R, W, R]),
        "3.SB",
    );
    put(
        cycle(vec![Po, Rf, Po, Rf, Po, Rf], vec![R, W, R, W, R, W]),
        "3.LB",
    );
    // ---- four threads ----
    put(
        cycle(vec![Rf, Po, Fr, Rf, Po, Fr], vec![W, R, R, W, R, R]),
        "IRIW",
    );
    put(
        cycle(vec![Rf, Po, Fr, Rf, Po, Ws], vec![W, R, R, W, R, W]),
        "IRRWIW",
    );
    table
}

/// The display token of an internal-edge flavour (`po`, `mfence`, `addr`, …).
fn flavour_token(edge: CycleEdge) -> String {
    match edge {
        CycleEdge::Po => "po".to_string(),
        CycleEdge::Fenced(k) => k.to_string(),
        CycleEdge::Dep(k) => k.to_string(),
        _ => unreachable!("external edges carry no flavour"),
    }
}

/// The base name of a canonical cycle: catalogue lookup by skeleton, with a
/// systematic `"{threads}T.{tokens}"` spelling for uncatalogued shapes.
pub fn base_name(cycle: &CriticalCycle, table: &BTreeMap<CriticalCycle, &'static str>) -> String {
    let skeleton = cycle.skeleton();
    if let Some(name) = table.get(&skeleton) {
        return (*name).to_string();
    }
    let tokens: Vec<String> = skeleton
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| match e {
            CycleEdge::Rf => "Rf".to_string(),
            CycleEdge::Fr => "Fr".to_string(),
            CycleEdge::Ws => "Ws".to_string(),
            _ => format!(
                "{}{}",
                skeleton.dirs()[i],
                skeleton.dirs()[(i + 1) % skeleton.len()]
            ),
        })
        .collect();
    format!("{}T.{}", skeleton.num_threads(), tokens.join("-"))
}

/// The name of one canonical cycle; `elide` controls whether plain entries
/// may be dropped from a mixed all-dependency suffix.
fn name_cycle(
    cycle: &CriticalCycle,
    table: &BTreeMap<CriticalCycle, &'static str>,
    elide: bool,
) -> String {
    let base = base_name(cycle, table);
    let flavours: Vec<CycleEdge> = cycle
        .edges()
        .iter()
        .copied()
        .filter(|e| e.is_internal())
        .collect();
    if flavours.iter().all(|&e| e == CycleEdge::Po) {
        return base;
    }
    let tokens: Vec<String> = flavours.iter().map(|&e| flavour_token(e)).collect();
    if tokens.windows(2).all(|w| w[0] == w[1]) {
        return format!("{base}+{}s", tokens[0]);
    }
    let deps_only = flavours
        .iter()
        .all(|e| matches!(e, CycleEdge::Po | CycleEdge::Dep(_)));
    let listed: Vec<String> = if elide && deps_only {
        tokens.into_iter().filter(|t| t != "po").collect()
    } else {
        tokens
    };
    format!("{base}+{}", listed.join("+"))
}

/// Names every cycle of a corpus, resolving elision collisions by falling
/// back to the fully spelled suffix, and guaranteeing unique names.
pub fn assign_names(cycles: Vec<CriticalCycle>) -> Vec<(CriticalCycle, String)> {
    let table = base_table();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut names: Vec<String> = cycles.iter().map(|c| name_cycle(c, &table, true)).collect();
    for (i, name) in names.iter().enumerate() {
        by_name.entry(name.clone()).or_default().push(i);
    }
    for (_, members) in by_name.into_iter().filter(|(_, m)| m.len() > 1) {
        for i in members {
            names[i] = name_cycle(&cycles[i], &table, false);
        }
    }
    cycles.into_iter().zip(names).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::{DepKind, FenceKind};

    fn named(edges: Vec<CycleEdge>, dirs: Vec<Dir>) -> String {
        let cycle = CriticalCycle::new(edges, dirs).unwrap().canonicalize();
        name_cycle(&cycle, &base_table(), true)
    }

    #[test]
    fn classic_plain_names() {
        use CycleEdge::{Fr, Po, Rf, Ws};
        use Dir::{R, W};
        assert_eq!(named(vec![Po, Rf, Po, Fr], vec![W, W, R, R]), "MP");
        assert_eq!(named(vec![Po, Fr, Po, Fr], vec![W, R, W, R]), "SB");
        assert_eq!(named(vec![Po, Rf, Po, Rf], vec![R, W, R, W]), "LB");
        assert_eq!(named(vec![Po, Ws, Po, Ws], vec![W, W, W, W]), "2+2W");
        assert_eq!(
            named(vec![Rf, Po, Fr, Rf, Po, Fr], vec![W, R, R, W, R, R]),
            "IRIW"
        );
    }

    #[test]
    fn flavour_suffixes_follow_the_herd_convention() {
        use CycleEdge::{Dep, Fenced, Fr, Po, Rf};
        use Dir::{R, W};
        let full = Fenced(FenceKind::Full);
        let addr = Dep(DepKind::Addr);
        let data = Dep(DepKind::Data);
        // Plural for uniform flavours.
        assert_eq!(
            named(vec![full, Rf, full, Fr], vec![W, W, R, R]),
            "MP+mfences"
        );
        assert_eq!(
            named(vec![data, Rf, data, Rf], vec![R, W, R, W]),
            "LB+datas"
        );
        assert_eq!(
            named(vec![addr, Fr, Rf, addr, Fr, Rf], vec![R, R, W, R, R, W]),
            "IRIW+addrs"
        );
        // Mixed fence flavours list everything, including plain po.
        assert_eq!(
            named(vec![full, Rf, addr, Fr], vec![W, W, R, R]),
            "MP+mfence+addr"
        );
        assert_eq!(
            named(vec![full, Fr, Po, Fr], vec![W, R, W, R]),
            "SB+mfence+po"
        );
        // All-dependency mixes elide the plain entries.
        assert_eq!(named(vec![Po, Rf, addr, Fr], vec![W, W, R, R]), "MP+addr");
        assert_eq!(
            named(vec![Rf, data, Rf, addr, Fr], vec![W, R, W, R, R]),
            "WRC+data+addr"
        );
    }

    #[test]
    fn systematic_names_for_uncatalogued_skeletons() {
        use CycleEdge::{Fr, Po, Rf, Ws};
        use Dir::{R, W};
        // A 3-thread shape outside the catalogue: a ws ; rf three-access run
        // feeding a two-read observer thread.
        let cycle = CriticalCycle::new(vec![Po, Ws, Rf, Po, Fr], vec![W, W, W, R, R])
            .unwrap()
            .canonicalize();
        let name = name_cycle(&cycle, &base_table(), true);
        assert!(name.starts_with("3T."), "unexpected systematic name {name}");
        assert!(name.contains("Ws") && name.contains("Rf"), "{name}");
    }

    #[test]
    fn catalogue_is_injective() {
        let table = base_table();
        let mut names: Vec<&str> = table.values().copied().collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 17);
    }
}
