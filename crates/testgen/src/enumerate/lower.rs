//! Lowering a critical cycle to a runnable [`LitmusTest`].
//!
//! Each thread segment becomes one thread's operation list: writes and reads
//! over the cycle's locations, with fenced internal edges inserting the fence
//! operation and dependency edges turning the target access into its
//! dependent form (`ReadAddrDp` / `WriteDataDp` / `WriteCtrlDp` — the same
//! operations the hand-written suites use, so dependencies flow through
//! lowering, the core's issue stalls and the observer identically).  The
//! genes interleave the threads round-robin, mirroring the hand-written
//! builder, so the flat list mixes threads while preserving per-thread
//! program order.

use crate::litmus::LitmusTest;
use crate::ops::{Op, OpKind};
use crate::test::{Gene, Test};
use mcversi_mcm::cycle::{CriticalCycle, CycleEdge, Dir};
use mcversi_mcm::{Address, DepKind};

/// Lowers a cycle to a litmus test over the given location addresses.
///
/// # Panics
///
/// Panics when fewer locations than the cycle's distinct location classes
/// are supplied.
pub fn lower_cycle(cycle: &CriticalCycle, name: &str, locations: &[Address]) -> LitmusTest {
    assert!(
        locations.len() >= cycle.num_locations(),
        "cycle {name} uses {} locations, only {} supplied",
        cycle.num_locations(),
        locations.len()
    );
    let n = cycle.len();
    let loc_of = cycle.location_of();
    let num_threads = cycle.num_threads();

    let mut threads: Vec<Vec<Op>> = Vec::with_capacity(num_threads);
    for t in 0..num_threads {
        let mut ops = Vec::new();
        for &i in &cycle.segment_events(t) {
            let incoming = cycle.edges()[(i + n - 1) % n];
            let kind = match (cycle.dirs()[i], incoming) {
                (Dir::R, CycleEdge::Dep(DepKind::Addr)) => OpKind::ReadAddrDp,
                (Dir::R, _) => OpKind::Read,
                (Dir::W, CycleEdge::Dep(DepKind::Data)) => OpKind::WriteDataDp,
                (Dir::W, CycleEdge::Dep(DepKind::Ctrl)) => OpKind::WriteCtrlDp,
                (Dir::W, _) => OpKind::Write,
            };
            ops.push(Op::new(kind, locations[loc_of[i]]));
            if let CycleEdge::Fenced(fence) = cycle.edges()[i] {
                let kind = OpKind::for_fence(fence)
                    .expect("enumeration only emits fences with operation forms");
                ops.push(Op::new(kind, Address(0)));
            }
        }
        threads.push(ops);
    }

    // Round-robin interleave, as in the hand-written builder.
    let mut genes = Vec::new();
    let max_len = threads.iter().map(|t| t.len()).max().unwrap_or(0);
    for slot in 0..max_len {
        for (pid, ops) in threads.iter().enumerate() {
            if let Some(&op) = ops.get(slot) {
                genes.push(Gene {
                    pid: pid as u32,
                    op,
                });
            }
        }
    }
    LitmusTest {
        name: name.to_string(),
        test: Test::new(genes, num_threads),
    }
}

/// Renders the cycle's forbidden final state as a herd-style `exists` clause.
///
/// Writes are numbered symbolically (`v1`, `v2`, … in cycle order — the
/// unique-value scheme assigns the concrete values at execution time); each
/// read's observed value and the final coherence constraints spell the weak
/// outcome the cycle encodes.
pub fn exists_clause(cycle: &CriticalCycle) -> String {
    let n = cycle.len();
    let threads = cycle.thread_of();
    let loc_of = cycle.location_of();
    let letter = |class: usize| (b'x' + (class % 3) as u8) as char;
    let loc_name = |class: usize| {
        if class < 3 {
            format!("{}", letter(class))
        } else {
            format!("x{class}")
        }
    };

    // Symbolic write values in cycle order.
    let mut value = vec![String::from("0"); n];
    let mut next = 1usize;
    for (slot, &dir) in value.iter_mut().zip(cycle.dirs().iter()) {
        if dir == Dir::W {
            *slot = format!("v{next}");
            next += 1;
        }
    }
    let mut clauses = Vec::new();
    for i in 0..n {
        if cycle.dirs()[i] != Dir::R {
            continue;
        }
        let observed = if cycle.edges()[(i + n - 1) % n] == CycleEdge::Rf {
            value[(i + n - 1) % n].clone()
        } else {
            "0".to_string()
        };
        clauses.push(format!(
            "P{}:{}={}",
            threads[i],
            loc_name(loc_of[i]),
            observed
        ));
    }
    for i in 0..n {
        if cycle.edges()[i] == CycleEdge::Ws {
            clauses.push(format!(
                "{}: {} co-before {}",
                loc_name(loc_of[i]),
                value[i],
                value[(i + 1) % n]
            ));
        }
    }
    format!("exists ({})", clauses.join(" /\\ "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::FenceKind;

    fn locs() -> [Address; 3] {
        [Address(0x1000), Address(0x2000), Address(0x3000)]
    }

    fn mp_flavoured() -> CriticalCycle {
        use CycleEdge::*;
        use Dir::*;
        CriticalCycle::new(
            vec![Fenced(FenceKind::Full), Rf, Dep(DepKind::Addr), Fr],
            vec![W, W, R, R],
        )
        .unwrap()
        .canonicalize()
    }

    #[test]
    fn lowering_mirrors_the_hand_written_shapes() {
        let t = lower_cycle(&mp_flavoured(), "MP+mfence+addr", &locs());
        assert_eq!(t.name, "MP+mfence+addr");
        assert_eq!(t.test.num_threads(), 2);
        let writer = t.test.thread_ops(0);
        let reader = t.test.thread_ops(1);
        assert_eq!(
            writer.iter().map(|o| o.kind).collect::<Vec<_>>(),
            vec![OpKind::Write, OpKind::Fence, OpKind::Write]
        );
        assert_eq!(
            reader.iter().map(|o| o.kind).collect::<Vec<_>>(),
            vec![OpKind::Read, OpKind::ReadAddrDp]
        );
        // The reader reads the writer's locations in the opposite order.
        assert_eq!(reader[0].addr, writer[2].addr);
        assert_eq!(reader[1].addr, writer[0].addr);
    }

    #[test]
    fn lowering_rejects_too_few_locations() {
        let cycle = mp_flavoured();
        let result = std::panic::catch_unwind(|| {
            lower_cycle(&cycle, "MP", &[Address(0x1000)]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn exists_clause_spells_the_weak_outcome() {
        let clause = exists_clause(&mp_flavoured());
        assert!(clause.starts_with("exists ("), "{clause}");
        // The reader observes the flag write and the stale initial data.
        assert!(clause.contains("=0"), "{clause}");
        assert!(clause.contains("v"), "{clause}");
        // A 2+2W-style cycle renders coherence clauses.
        use CycleEdge::*;
        use Dir::*;
        let ww = CriticalCycle::new(vec![Po, Ws, Po, Ws], vec![W, W, W, W])
            .unwrap()
            .canonicalize();
        let clause = exists_clause(&ww);
        assert!(clause.contains("co-before"), "{clause}");
    }
}
