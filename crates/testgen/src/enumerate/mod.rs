//! Auto-enumerated litmus corpus: a diy-style critical-cycle enumerator.
//!
//! Instead of hand-picking weak shapes, this module *walks* the space of
//! critical cycles over the relaxation-edge vocabulary
//! ([`mcversi_mcm::cycle`]): `po` / fenced / dependency internal edges times
//! `rf` / `fr` / `ws` external edges, bounded by a thread and edge budget
//! ([`EnumerationBounds`]).  Each cycle is canonicalized up to rotation,
//! assigned a herd-style name (`MP+mfence+addr`, `SB+lwsyncs`, `IRIW`, …; see
//! [`name`]), given a per-[`ModelKind`] expected verdict by the closed-form
//! oracle ([`ModelKind::forbids_cycle`]) and lowered to a runnable
//! [`LitmusTest`] with its forbidden final-state condition ([`lower`]).
//!
//! The enumerated corpus *subsumes* the hand-written suites (every named
//! shape of `litmus::x86_tso_suite` / `litmus::weak_suite` /
//! `litmus::acquire_suite` reappears under the same canonical name, except
//! the RMW variants and the `2T-*` systematic filler, which live outside the
//! cycle vocabulary) and extends them to hundreds of discriminating tests per
//! bound.  It is the default corpus of every campaign; the hand-written
//! suites are retained as the golden reference the conformance tests compare
//! against.

pub mod lower;
pub mod name;

use crate::litmus::LitmusTest;
use mcversi_mcm::cycle::{CriticalCycle, CycleEdge, Dir};
use mcversi_mcm::{Address, DepKind, FenceKind, ModelKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// The search bounds of one enumeration run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EnumerationBounds {
    /// Maximum number of threads (= external edges) per cycle.
    pub max_threads: usize,
    /// Maximum number of edges (= events) per cycle.
    pub max_edges: usize,
    /// Fence flavours an internal edge may carry.  Only flavours with a
    /// test-operation form are eligible ([`crate::ops::OpKind::for_fence`]);
    /// others are skipped.
    pub fences: Vec<FenceKind>,
    /// Dependency flavours an internal edge may carry (placement is further
    /// constrained by typing: read-sourced, `addr` read-borne, `data`/`ctrl`
    /// write-borne).
    pub deps: Vec<DepKind>,
}

impl EnumerationBounds {
    /// The default corpus bound: up to four threads and six edges — enough to
    /// reach `IRIW`, `ISA2` and the whole classic catalogue — over every
    /// fence flavour with an operation form and every dependency kind.
    pub fn new(max_threads: usize, max_edges: usize) -> Self {
        EnumerationBounds {
            max_threads,
            max_edges,
            fences: vec![
                FenceKind::Full,
                FenceKind::LightweightSync,
                FenceKind::Acquire,
                FenceKind::Release,
            ],
            deps: DepKind::ALL.to_vec(),
        }
    }
}

impl Default for EnumerationBounds {
    fn default() -> Self {
        EnumerationBounds::new(4, 6)
    }
}

/// Which litmus corpus a campaign's `diy-litmus` baseline draws from.
///
/// Selected by the `MCVERSI_LITMUS` environment variable / `ScenarioSpec`
/// axis: `handpicked` is the original hand-written suite, `enumerated:<T>x<E>`
/// the auto-enumerated corpus bounded at `T` threads and `E` edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LitmusCorpus {
    /// The hand-written golden suites (`litmus::handpicked_suite_for`).
    Handpicked,
    /// The enumerated corpus at the given bound.
    Enumerated {
        /// Maximum threads per cycle.
        max_threads: usize,
        /// Maximum edges per cycle.
        max_edges: usize,
    },
}

impl LitmusCorpus {
    /// The default corpus: enumerated at the default bound.
    pub fn enumerated_default() -> Self {
        let bounds = EnumerationBounds::default();
        LitmusCorpus::Enumerated {
            max_threads: bounds.max_threads,
            max_edges: bounds.max_edges,
        }
    }

    /// The largest bound the corpus selection accepts: the flavour product
    /// grows combinatorially with the edge budget, so anything past six
    /// threads / eight edges would stall every campaign at start-up for a
    /// corpus no budget could ever traverse.
    pub const MAX_THREADS: usize = 6;
    /// See [`LitmusCorpus::MAX_THREADS`].
    pub const MAX_EDGES: usize = 8;

    /// Parses a `MCVERSI_LITMUS` value (case-insensitively): `handpicked`,
    /// `enumerated`, or `enumerated:<threads>x<edges>` (e.g.
    /// `enumerated:2x4`).  Bounds outside `2..=6` threads / `4..=8` edges
    /// are rejected (see [`LitmusCorpus::MAX_THREADS`]).
    pub fn parse(raw: &str) -> Option<LitmusCorpus> {
        let raw = raw.trim().to_ascii_lowercase();
        if raw == "handpicked" {
            return Some(LitmusCorpus::Handpicked);
        }
        if raw == "enumerated" {
            return Some(LitmusCorpus::enumerated_default());
        }
        let rest = raw.strip_prefix("enumerated:")?;
        let (threads, edges) = rest.split_once('x')?;
        let max_threads: usize = threads.trim().parse().ok()?;
        let max_edges: usize = edges.trim().parse().ok()?;
        if !(2..=Self::MAX_THREADS).contains(&max_threads)
            || !(4..=Self::MAX_EDGES).contains(&max_edges)
        {
            return None;
        }
        Some(LitmusCorpus::Enumerated {
            max_threads,
            max_edges,
        })
    }

    /// The bounds of the enumerated variant, `None` for the hand-picked one.
    ///
    /// Bounds are clamped to [`LitmusCorpus::MAX_THREADS`] /
    /// [`LitmusCorpus::MAX_EDGES`] — [`parse`](Self::parse) already rejects
    /// larger values, but a hand-built `ScenarioSpec` (e.g. from a JSON
    /// file) must not be able to stall a campaign with an astronomically
    /// large enumeration either.
    pub fn bounds(&self) -> Option<EnumerationBounds> {
        match *self {
            LitmusCorpus::Handpicked => None,
            LitmusCorpus::Enumerated {
                max_threads,
                max_edges,
            } => Some(EnumerationBounds::new(
                max_threads.clamp(2, Self::MAX_THREADS),
                max_edges.clamp(4, Self::MAX_EDGES),
            )),
        }
    }
}

impl Default for LitmusCorpus {
    fn default() -> Self {
        LitmusCorpus::enumerated_default()
    }
}

impl fmt::Display for LitmusCorpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusCorpus::Handpicked => f.write_str("handpicked"),
            LitmusCorpus::Enumerated {
                max_threads,
                max_edges,
            } => write!(f, "enumerated:{max_threads}x{max_edges}"),
        }
    }
}

/// One enumerated test: the canonical cycle, its herd-style name and the
/// per-model verdict predicted by the closed-form oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumeratedTest {
    /// The canonical critical cycle.
    pub cycle: CriticalCycle,
    /// Canonical herd-style name (base shape + flavour suffix).
    pub name: String,
    /// Expected "weak outcome forbidden" verdict per model, in
    /// [`ModelKind::ALL`] order — the independent oracle the checker is
    /// cross-checked against.
    pub forbidden: [bool; ModelKind::ALL.len()],
}

impl EnumeratedTest {
    /// Whether the model forbids this test's weak outcome.
    pub fn forbidden_under(&self, model: ModelKind) -> bool {
        let idx = ModelKind::ALL
            .iter()
            .position(|&m| m == model)
            .expect("model registered");
        self.forbidden[idx]
    }

    /// Lowers the cycle to a runnable litmus test over the given locations
    /// (see [`lower::lower_cycle`]).
    pub fn litmus(&self, locations: &[Address]) -> LitmusTest {
        lower::lower_cycle(&self.cycle, &self.name, locations)
    }

    /// The forbidden final-state condition, herd-style (see
    /// [`lower::exists_clause`]).
    pub fn condition(&self) -> String {
        lower::exists_clause(&self.cycle)
    }
}

/// Enumerates the canonical corpus for the given bounds.
///
/// Results are cached per bound (the corpus is deterministic), so repeated
/// campaign samples share one enumeration.  The corpus is sorted by
/// (threads, edges, flavour count, name) — small, plain shapes first.
pub fn enumerate(bounds: &EnumerationBounds) -> Arc<Vec<EnumeratedTest>> {
    static CACHE: OnceLock<Mutex<BTreeMap<EnumerationBounds, Arc<Vec<EnumeratedTest>>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut cache = cache.lock().expect("corpus cache lock");
    if let Some(hit) = cache.get(bounds) {
        return Arc::clone(hit);
    }
    let corpus = Arc::new(enumerate_uncached(bounds));
    cache.insert(bounds.clone(), Arc::clone(&corpus));
    corpus
}

fn enumerate_uncached(bounds: &EnumerationBounds) -> Vec<EnumeratedTest> {
    let mut seen: BTreeMap<CriticalCycle, ()> = BTreeMap::new();
    let fences: Vec<FenceKind> = bounds
        .fences
        .iter()
        .copied()
        .filter(|&k| crate::ops::OpKind::for_fence(k).is_some())
        .collect();

    // Skeleton search: number of threads, events per thread (1 or 2),
    // external edge kinds.  Event directions are fully determined by the
    // external edges, so the skeleton space is tiny; the flavour assignment
    // of the internal edges is the cartesian product of the per-edge options.
    for n_ext in 2..=bounds.max_threads {
        for sizes_mask in 0u32..(1 << n_ext) {
            let sizes: Vec<usize> = (0..n_ext)
                .map(|k| if sizes_mask & (1 << k) != 0 { 2 } else { 1 })
                .collect();
            let n_int: usize = sizes.iter().filter(|&&s| s == 2).count();
            if n_int < 2 || n_ext + n_int > bounds.max_edges {
                continue;
            }
            let mut exts = vec![CycleEdge::Rf; n_ext];
            enumerate_externals(bounds, &fences, &sizes, &mut exts, 0, &mut seen);
        }
    }

    let mut corpus: Vec<EnumeratedTest> = {
        let named = name::assign_names(seen.into_keys().collect());
        named
            .into_iter()
            .map(|(cycle, name)| {
                let forbidden = ModelKind::cycle_verdicts(&cycle);
                EnumeratedTest {
                    cycle,
                    name,
                    forbidden,
                }
            })
            .collect()
    };
    corpus.sort_by(|a, b| {
        (
            a.cycle.num_threads(),
            a.cycle.len(),
            a.cycle.num_flavoured(),
            &a.name,
        )
            .cmp(&(
                b.cycle.num_threads(),
                b.cycle.len(),
                b.cycle.num_flavoured(),
                &b.name,
            ))
    });
    corpus
}

const EXTERNALS: [CycleEdge; 3] = [CycleEdge::Rf, CycleEdge::Fr, CycleEdge::Ws];

fn enumerate_externals(
    bounds: &EnumerationBounds,
    fences: &[FenceKind],
    sizes: &[usize],
    exts: &mut Vec<CycleEdge>,
    at: usize,
    seen: &mut BTreeMap<CriticalCycle, ()>,
) {
    if at == sizes.len() {
        flavour_product(bounds, fences, sizes, exts, seen);
        return;
    }
    for ext in EXTERNALS {
        exts[at] = ext;
        enumerate_externals(bounds, fences, sizes, exts, at + 1, seen);
    }
}

/// Builds the skeleton for one (sizes, external kinds) choice and walks every
/// flavour assignment of its internal edges.
fn flavour_product(
    bounds: &EnumerationBounds,
    fences: &[FenceKind],
    sizes: &[usize],
    exts: &[CycleEdge],
    seen: &mut BTreeMap<CriticalCycle, ()>,
) {
    let n_ext = sizes.len();
    // Event directions are dictated by the external edges: a segment starts
    // with the incoming edge's target and ends with the outgoing edge's
    // source; single-event segments need the two to agree.
    let mut dirs: Vec<Dir> = Vec::new();
    let mut edges: Vec<CycleEdge> = Vec::new();
    let mut internal_positions: Vec<usize> = Vec::new();
    for k in 0..n_ext {
        let incoming = exts[(k + n_ext - 1) % n_ext];
        let outgoing = exts[k];
        let start = incoming.external_dirs().expect("external").1;
        let end = outgoing.external_dirs().expect("external").0;
        if sizes[k] == 1 {
            if start != end {
                return;
            }
            dirs.push(start);
        } else {
            dirs.push(start);
            internal_positions.push(edges.len());
            edges.push(CycleEdge::Po);
            dirs.push(end);
        }
        edges.push(outgoing);
    }
    // Validate the plain skeleton once; flavouring cannot invalidate the
    // structural conditions, only the per-edge typing handled below.
    if CriticalCycle::new(edges.clone(), dirs.clone()).is_err() {
        return;
    }

    // Per internal edge, the legal flavour options.
    let n = edges.len();
    let options: Vec<Vec<CycleEdge>> = internal_positions
        .iter()
        .map(|&pos| {
            let (src, dst) = (dirs[pos], dirs[(pos + 1) % n]);
            let mut opts = vec![CycleEdge::Po];
            opts.extend(fences.iter().map(|&k| CycleEdge::Fenced(k)));
            if src == Dir::R {
                for &dep in &bounds.deps {
                    let ok = match dep {
                        DepKind::Addr => dst == Dir::R,
                        DepKind::Data | DepKind::Ctrl => dst == Dir::W,
                    };
                    if ok {
                        opts.push(CycleEdge::Dep(dep));
                    }
                }
            }
            opts
        })
        .collect();

    let mut assignment = vec![0usize; internal_positions.len()];
    loop {
        let mut flavoured = edges.clone();
        for (slot, &pos) in internal_positions.iter().enumerate() {
            flavoured[pos] = options[slot][assignment[slot]];
        }
        if let Ok(cycle) = CriticalCycle::new(flavoured, dirs.clone()) {
            seen.entry(cycle.canonicalize()).or_insert(());
        }
        // Odometer increment over the option indices.
        let mut slot = 0;
        loop {
            if slot == assignment.len() {
                return;
            }
            assignment[slot] += 1;
            if assignment[slot] < options[slot].len() {
                break;
            }
            assignment[slot] = 0;
            slot += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parse_and_display_round_trip() {
        assert_eq!(
            LitmusCorpus::parse("handpicked"),
            Some(LitmusCorpus::Handpicked)
        );
        assert_eq!(
            LitmusCorpus::parse("enumerated"),
            Some(LitmusCorpus::enumerated_default())
        );
        assert_eq!(
            LitmusCorpus::parse("enumerated:2x4"),
            Some(LitmusCorpus::Enumerated {
                max_threads: 2,
                max_edges: 4
            })
        );
        assert_eq!(LitmusCorpus::parse("enumerated:1x4"), None);
        assert_eq!(LitmusCorpus::parse("bogus"), None);
        // Case-insensitive, including the bounded spelling.
        assert_eq!(
            LitmusCorpus::parse("Enumerated:2X4"),
            Some(LitmusCorpus::Enumerated {
                max_threads: 2,
                max_edges: 4
            })
        );
        // Oversized bounds are rejected at parse time and clamped when a
        // hand-built spec smuggles them in.
        assert_eq!(LitmusCorpus::parse("enumerated:7x6"), None);
        assert_eq!(LitmusCorpus::parse("enumerated:4x9"), None);
        assert_eq!(
            LitmusCorpus::Enumerated {
                max_threads: 64,
                max_edges: 64
            }
            .bounds(),
            Some(EnumerationBounds::new(
                LitmusCorpus::MAX_THREADS,
                LitmusCorpus::MAX_EDGES
            ))
        );
        for corpus in [
            LitmusCorpus::Handpicked,
            LitmusCorpus::enumerated_default(),
            LitmusCorpus::Enumerated {
                max_threads: 3,
                max_edges: 5,
            },
        ] {
            assert_eq!(LitmusCorpus::parse(&corpus.to_string()), Some(corpus));
        }
    }

    #[test]
    fn default_bound_yields_a_rich_canonical_corpus() {
        let corpus = enumerate(&EnumerationBounds::default());
        assert!(
            corpus.len() >= 50,
            "only {} canonical tests at the default bound",
            corpus.len()
        );
        // Names are unique (canonicalization + collision resolution).
        let mut names: Vec<&str> = corpus.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate canonical names");
        // Cycles are canonical and unique.
        let mut cycles: Vec<_> = corpus.iter().map(|t| t.cycle.clone()).collect();
        for c in &cycles {
            assert_eq!(*c, c.canonicalize());
        }
        cycles.sort();
        cycles.dedup();
        assert_eq!(cycles.len(), before);
    }

    #[test]
    fn classic_names_appear_in_the_default_corpus() {
        let corpus = enumerate(&EnumerationBounds::default());
        let has = |name: &str| corpus.iter().any(|t| t.name == name);
        for name in [
            "MP",
            "SB",
            "LB",
            "S",
            "R",
            "2+2W",
            "WRC",
            "ISA2",
            "RWC",
            "WWC",
            "W+RWC",
            "Z6.3",
            "3.2W",
            "3.SB",
            "3.LB",
            "IRIW",
            "IRRWIW",
            "MP+addr",
            "MP+mfence+addr",
            "MP+lwsync+addr",
            "MP+rel+addr",
            "MP+mfences",
            "MP+mfence+acq",
            "LB+datas",
            "LB+ctrls",
            "LB+mfences",
            "SB+mfences",
            "SB+lwsyncs",
            "SB+mfence+po",
            "R+mfences",
            "WRC+data+addr",
            "WRC+mfence+addr",
            "WRC+mfences",
            "IRIW+addrs",
            "IRIW+mfences",
            "S+mfence+data",
        ] {
            assert!(has(name), "{name} missing from the enumerated corpus");
        }
    }

    #[test]
    fn toy_bound_stays_small_but_covers_the_two_thread_catalogue() {
        let corpus = enumerate(&EnumerationBounds::new(2, 4));
        assert!(corpus.len() >= 20, "{}", corpus.len());
        assert!(corpus.iter().all(|t| t.cycle.num_threads() <= 2));
        assert!(corpus.iter().all(|t| t.cycle.len() <= 4));
        for name in ["MP", "SB", "LB", "S", "R", "2+2W", "LB+datas", "SB+mfences"] {
            assert!(
                corpus.iter().any(|t| t.name == name),
                "{name} missing at the 2x4 bound"
            );
        }
        // The toy corpus is a subset (by name) of the default corpus.
        let full = enumerate(&EnumerationBounds::default());
        for t in corpus.iter() {
            assert!(
                full.iter().any(|f| f.name == t.name),
                "{} not in 4x6",
                t.name
            );
        }
    }

    #[test]
    fn verdicts_match_the_oracle_and_are_monotone() {
        let corpus = enumerate(&EnumerationBounds::default());
        for t in corpus.iter() {
            assert_eq!(t.forbidden, ModelKind::cycle_verdicts(&t.cycle));
            let [sc, tso, armish, powerish, rmo] = t.forbidden;
            assert!(sc >= tso, "{}: SC weaker than TSO", t.name);
            assert!(tso >= armish, "{}: TSO weaker than ARMish", t.name);
            assert!(tso >= powerish, "{}: TSO weaker than POWERish", t.name);
            assert!(armish >= rmo, "{}: ARMish weaker than RMO", t.name);
            assert!(powerish >= rmo, "{}: POWERish weaker than RMO", t.name);
            // SC forbids every critical cycle.
            assert!(sc, "{}: SC must forbid every critical cycle", t.name);
        }
        // The corpus discriminates: some tests are TSO-only, some reach RMO.
        assert!(corpus
            .iter()
            .any(|t| t.forbidden_under(ModelKind::Tso) && !t.forbidden_under(ModelKind::Armish)));
        assert!(corpus.iter().any(|t| t.forbidden_under(ModelKind::Rmo)));
    }

    #[test]
    fn enumeration_is_cached() {
        let a = enumerate(&EnumerationBounds::default());
        let b = enumerate(&EnumerationBounds::default());
        assert!(Arc::ptr_eq(&a, &b));
    }
}
