//! Test generation parameters (paper Table 3).

use crate::enumerate::LitmusCorpus;
use crate::ops::OpKind;
use serde::{Deserialize, Serialize};

/// Selection bias (in percent-like weights) over the operation kinds.
///
/// The default mirrors Table 3: Read 50 %, ReadAddrDp 5 %, Write 42 %,
/// ReadModifyWrite 1 %, CacheFlush 1 %, Delay 1 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationBias {
    /// Weight of plain reads.
    pub read: u32,
    /// Weight of address-dependent reads.
    pub read_addr_dp: u32,
    /// Weight of writes.
    pub write: u32,
    /// Weight of atomic read-modify-writes.
    pub read_modify_write: u32,
    /// Weight of cache flushes.
    pub cache_flush: u32,
    /// Weight of delays.
    pub delay: u32,
    /// Weight of explicit full fences (0 in the paper's Table 3 mix; RMWs
    /// already imply fences on x86).
    pub fence: u32,
    /// Weight of data-dependent writes (0 in the Table 3 mix; used when
    /// targeting relaxed models).
    pub write_data_dp: u32,
    /// Weight of control-dependent writes (0 in the Table 3 mix).
    pub write_ctrl_dp: u32,
    /// Weight of acquire fences (0 in the Table 3 mix).
    pub fence_acquire: u32,
    /// Weight of release fences (0 in the Table 3 mix).
    pub fence_release: u32,
    /// Weight of lightweight (`lwsync`-style) fences (0 in the Table 3 mix).
    pub fence_lw: u32,
}

impl OperationBias {
    /// The paper's Table 3 bias (the relaxed-model-only operations get zero
    /// weight: x86-TSO neither needs nor benefits from them).
    pub fn paper_default() -> Self {
        OperationBias {
            read: 50,
            read_addr_dp: 5,
            write: 42,
            read_modify_write: 1,
            cache_flush: 1,
            delay: 1,
            fence: 0,
            write_data_dp: 0,
            write_ctrl_dp: 0,
            fence_acquire: 0,
            fence_release: 0,
            fence_lw: 0,
        }
    }

    /// A bias tilted towards the dependency-carrying operations and relaxed
    /// fence flavours, for campaigns targeting models weaker than TSO.
    pub fn relaxed_default() -> Self {
        OperationBias {
            read: 34,
            read_addr_dp: 10,
            write: 32,
            read_modify_write: 1,
            cache_flush: 1,
            delay: 1,
            fence: 3,
            write_data_dp: 6,
            write_ctrl_dp: 4,
            fence_acquire: 2,
            fence_release: 2,
            fence_lw: 4,
        }
    }

    /// Total weight (must be positive).
    pub fn total(&self) -> u32 {
        OpKind::ALL.iter().map(|&k| self.weight(k)).sum()
    }

    /// Weight of one kind.
    pub fn weight(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::Read => self.read,
            OpKind::ReadAddrDp => self.read_addr_dp,
            OpKind::Write => self.write,
            OpKind::WriteDataDp => self.write_data_dp,
            OpKind::WriteCtrlDp => self.write_ctrl_dp,
            OpKind::ReadModifyWrite => self.read_modify_write,
            OpKind::CacheFlush => self.cache_flush,
            OpKind::Delay => self.delay,
            OpKind::Fence => self.fence,
            OpKind::FenceAcquire => self.fence_acquire,
            OpKind::FenceRelease => self.fence_release,
            OpKind::FenceLw => self.fence_lw,
        }
    }

    /// Picks a kind given a roll in `[0, total())`.
    pub fn pick(&self, roll: u32) -> OpKind {
        let mut acc = 0;
        for kind in OpKind::ALL {
            acc += self.weight(kind);
            if roll < acc {
                return kind;
            }
        }
        OpKind::Read
    }
}

impl Default for OperationBias {
    fn default() -> Self {
        OperationBias::paper_default()
    }
}

/// Parameters of the test generator and GP engine (paper Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestGenParams {
    /// Total number of operations per test (across all threads).
    pub test_size: usize,
    /// Number of executions of each test per test-run.
    pub iterations: usize,
    /// Number of threads a test may use.
    pub num_threads: usize,
    /// Usable test memory in bytes (the paper evaluates 1 KB and 8 KB).
    pub test_memory_bytes: u64,
    /// Address stride in bytes (base addresses are multiples of this).
    pub stride_bytes: u64,
    /// Size of each contiguous partition of test memory.
    pub partition_bytes: u64,
    /// Separation between the starting addresses of consecutive partitions.
    pub partition_separation_bytes: u64,
    /// Base physical address of the test memory region.
    pub base_address: u64,
    /// Operation selection bias.
    pub bias: OperationBias,
    /// Maximum delay (cycles) of a `Delay` operation.
    pub max_delay_cycles: u32,
    /// Which corpus the `diy-litmus` baseline draws from (the
    /// `MCVERSI_LITMUS` axis; defaults to the enumerated corpus at the
    /// default bound).
    pub litmus: LitmusCorpus,
    // ---- GP parameters ----
    /// Population size.
    pub population_size: usize,
    /// Tournament size for selection.
    pub tournament_size: usize,
    /// Mutation probability (PMUT).
    pub mutation_probability: f64,
    /// Crossover probability.
    pub crossover_probability: f64,
    /// Unconditional memory-operation selection probability (PUSEL).
    pub p_usel: f64,
    /// Bias with which a mutated operation draws its address from the parents'
    /// fit-address set (PBFA).
    pub p_bfa: f64,
}

impl TestGenParams {
    /// The paper's Table 3 parameters with the given test-memory size.
    pub fn paper_default(test_memory_bytes: u64) -> Self {
        TestGenParams {
            test_size: 1000,
            iterations: 10,
            num_threads: 8,
            test_memory_bytes,
            stride_bytes: 16,
            partition_bytes: 512,
            partition_separation_bytes: 1 << 20,
            base_address: 0x10_0000,
            bias: OperationBias::paper_default(),
            max_delay_cycles: 32,
            litmus: LitmusCorpus::enumerated_default(),
            population_size: 100,
            tournament_size: 2,
            mutation_probability: 0.005,
            crossover_probability: 1.0,
            p_usel: 0.2,
            p_bfa: 0.05,
        }
    }

    /// A scaled-down configuration for unit tests and quick examples.
    pub fn small() -> Self {
        TestGenParams {
            test_size: 48,
            iterations: 4,
            num_threads: 4,
            test_memory_bytes: 256,
            stride_bytes: 16,
            partition_bytes: 128,
            partition_separation_bytes: 1 << 16,
            base_address: 0x10_0000,
            bias: OperationBias::paper_default(),
            max_delay_cycles: 16,
            litmus: LitmusCorpus::enumerated_default(),
            population_size: 16,
            tournament_size: 2,
            mutation_probability: 0.02,
            crossover_probability: 1.0,
            p_usel: 0.2,
            p_bfa: 0.05,
        }
    }

    /// Overrides the test memory size, returning a modified copy.
    pub fn with_test_memory(mut self, bytes: u64) -> Self {
        self.test_memory_bytes = bytes;
        self
    }

    /// Overrides the total test size, returning a modified copy.
    pub fn with_test_size(mut self, size: usize) -> Self {
        self.test_size = size;
        self
    }

    /// Overrides the thread count, returning a modified copy.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    /// Number of distinct (stride-aligned) logical offsets in the test memory.
    pub fn num_slots(&self) -> u64 {
        self.test_memory_bytes / self.stride_bytes
    }

    /// Maps a logical byte offset in `[0, test_memory_bytes)` to a physical
    /// address, applying the partitioning scheme of §5.2.1: the memory is cut
    /// into `partition_bytes` blocks whose starting addresses are
    /// `partition_separation_bytes` apart, so that cache-capacity evictions
    /// occur even for small test memories.
    pub fn offset_to_address(&self, offset: u64) -> mcversi_mcm::Address {
        debug_assert!(offset < self.test_memory_bytes);
        let partition = offset / self.partition_bytes;
        let within = offset % self.partition_bytes;
        mcversi_mcm::Address(
            self.base_address + partition * self.partition_separation_bytes + within,
        )
    }

    /// All addressable (stride-aligned) slot addresses.
    pub fn all_slot_addresses(&self) -> Vec<mcversi_mcm::Address> {
        (0..self.num_slots())
            .map(|i| self.offset_to_address(i * self.stride_bytes))
            .collect()
    }
}

impl Default for TestGenParams {
    fn default() -> Self {
        TestGenParams::paper_default(8 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let p = TestGenParams::paper_default(8 * 1024);
        assert_eq!(p.test_size, 1000);
        assert_eq!(p.iterations, 10);
        assert_eq!(p.test_memory_bytes, 8 * 1024);
        assert_eq!(p.stride_bytes, 16);
        assert_eq!(p.population_size, 100);
        assert_eq!(p.tournament_size, 2);
        assert!((p.mutation_probability - 0.005).abs() < 1e-12);
        assert!((p.crossover_probability - 1.0).abs() < 1e-12);
        assert!((p.p_usel - 0.2).abs() < 1e-12);
        assert!((p.p_bfa - 0.05).abs() < 1e-12);
        let b = p.bias;
        assert_eq!(b.total(), 100);
        assert_eq!(b.read, 50);
        assert_eq!(b.write, 42);
    }

    #[test]
    fn bias_pick_covers_all_kinds() {
        let b = OperationBias::paper_default();
        assert_eq!(b.pick(0), OpKind::Read);
        assert_eq!(b.pick(49), OpKind::Read);
        assert_eq!(b.pick(50), OpKind::ReadAddrDp);
        assert_eq!(b.pick(54), OpKind::ReadAddrDp);
        assert_eq!(b.pick(55), OpKind::Write);
        assert_eq!(b.pick(96), OpKind::Write);
        assert_eq!(b.pick(97), OpKind::ReadModifyWrite);
        assert_eq!(b.pick(98), OpKind::CacheFlush);
        assert_eq!(b.pick(99), OpKind::Delay);
    }

    #[test]
    fn relaxed_bias_reaches_dependency_ops_and_fences() {
        let b = OperationBias::relaxed_default();
        assert_eq!(b.total(), 100);
        for kind in [
            OpKind::WriteDataDp,
            OpKind::WriteCtrlDp,
            OpKind::FenceAcquire,
            OpKind::FenceRelease,
            OpKind::FenceLw,
        ] {
            assert!(b.weight(kind) > 0, "{kind} has zero weight");
        }
        // Every kind with weight is reachable through pick().
        let mut seen = std::collections::BTreeSet::new();
        for roll in 0..b.total() {
            seen.insert(format!("{}", b.pick(roll)));
        }
        for kind in OpKind::ALL {
            assert_eq!(
                seen.contains(&format!("{kind}")),
                b.weight(kind) > 0,
                "{kind} reachability mismatch"
            );
        }
    }

    #[test]
    fn partitioning_spreads_offsets_one_mib_apart() {
        let p = TestGenParams::paper_default(8 * 1024);
        // 8 KB / 512 B = 16 partitions.
        let a0 = p.offset_to_address(0);
        let a511 = p.offset_to_address(511);
        let a512 = p.offset_to_address(512);
        assert_eq!(a511.0 - a0.0, 511);
        assert_eq!(a512.0 - a0.0, 1 << 20);
        let last = p.offset_to_address(8 * 1024 - 16);
        assert_eq!(last.0 - a0.0, 15 * (1 << 20) + 496);
    }

    #[test]
    fn slot_addresses_are_unique_and_aligned() {
        let p = TestGenParams::paper_default(1024);
        let slots = p.all_slot_addresses();
        assert_eq!(slots.len(), 64);
        let mut dedup = slots.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), slots.len());
        assert!(slots.iter().all(|a| a.0 % 8 == 0));
    }
}
