//! Non-determinism metrics: NDT, NDe and the fit-address set.
//!
//! The key metric behind the selective crossover (paper §3.1, Definitions
//! 1–3) is the *average non-determinism of a test* (NDT): the number of
//! distinct conflict-order predecessors observed per event across all
//! iterations of a test-run.  A fully deterministic test-run yields exactly
//! one predecessor per event (its reads-from source or the write it
//! overwrote), so NDT = 1; racy tests accumulate different predecessors across
//! iterations and NDT grows.
//!
//! Events are identified *statically* — by thread and program-order index —
//! so observations from different iterations of the same test can be unioned.

use crate::ops::OpKind;
use crate::test::Test;
use mcversi_mcm::execution::CandidateExecution;
use mcversi_mcm::{Address, Event};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Static identity of an event, stable across iterations of a test-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKey {
    /// An event of the test: thread, program-order index, and whether it is
    /// the write half of the instruction (for RMWs).
    Op {
        /// Thread id.
        pid: u32,
        /// Program-order index within the thread.
        poi: u32,
        /// `true` for the write half of an instruction.
        write: bool,
    },
    /// The synthetic initial write of an address.
    Initial {
        /// The address.
        addr: Address,
    },
}

impl EventKey {
    fn of(event: &Event) -> EventKey {
        match event.iiid {
            Some(iiid) => EventKey::Op {
                pid: iiid.pid.0,
                poi: iiid.poi,
                write: event.is_write(),
            },
            None => EventKey::Initial {
                addr: event.addr.unwrap_or(Address(0)),
            },
        }
    }
}

/// The union of observed conflict orders across the iterations of a test-run
/// (`rfcoRUN` of Definition 1).
#[derive(Debug, Clone, Default)]
pub struct RunConflicts {
    pairs: BTreeSet<(EventKey, EventKey)>,
    iterations: usize,
}

impl RunConflicts {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunConflicts::default()
    }

    /// Number of iterations accumulated so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of distinct conflict-order pairs observed (`|rfcoRUN|`).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Adds one iteration's observed conflict orders (`rf_i ∪ co_i`).
    ///
    /// The *observed* (immediate) coherence order is used rather than its
    /// transitive closure, so a deterministic iteration contributes exactly
    /// one predecessor per event.
    pub fn add_iteration(&mut self, exec: &CandidateExecution) {
        self.iterations += 1;
        for (a, b) in exec.rf().iter().chain(exec.co_observed().iter()) {
            let ka = EventKey::of(exec.event(a));
            let kb = EventKey::of(exec.event(b));
            self.pairs.insert((ka, kb));
        }
    }

    /// Computes NDT, per-event NDe and the fit-address set for `test`
    /// (Definitions 2 and 3; the fit-address rule of §3.3).
    pub fn analyze(&self, test: &Test) -> NdtAnalysis {
        let n = test.num_events().max(1);
        let ndt = self.pairs.len() as f64 / n as f64;

        // NDe: number of distinct predecessors per (non-initial) event.
        let mut nde: BTreeMap<EventKey, usize> = BTreeMap::new();
        for (_, b) in &self.pairs {
            if matches!(b, EventKey::Op { .. }) {
                *nde.entry(*b).or_insert(0) += 1;
            }
        }

        // fitaddrs: addresses of events whose NDe exceeds the rounded NDT.
        let threshold = ndt.round() as usize;
        let mut fitaddrs = BTreeSet::new();
        let threads = test.threads();
        for (key, count) in &nde {
            if *count <= threshold {
                continue;
            }
            if let EventKey::Op { pid, poi, .. } = key {
                if let Some(op) = threads
                    .get(*pid as usize)
                    .and_then(|ops| ops.get(*poi as usize))
                {
                    if op.is_memop() && op.kind != OpKind::Delay {
                        fitaddrs.insert(op.addr);
                    }
                }
            }
        }

        NdtAnalysis { ndt, nde, fitaddrs }
    }
}

/// The result of analysing one test-run's observed conflict orders.
#[derive(Debug, Clone)]
pub struct NdtAnalysis {
    /// The test's average non-determinism (Definition 2).
    pub ndt: f64,
    /// Per-event non-determinism (Definition 3), keyed by static event id.
    pub nde: BTreeMap<EventKey, usize>,
    /// Addresses of events whose NDe exceeds the rounded NDT — the addresses
    /// the selective crossover will always preserve.
    pub fitaddrs: BTreeSet<Address>,
}

impl NdtAnalysis {
    /// An analysis representing "nothing observed" (NDT 0, no fit addresses).
    pub fn empty() -> Self {
        NdtAnalysis {
            ndt: 0.0,
            nde: BTreeMap::new(),
            fitaddrs: BTreeSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::test::Gene;
    use mcversi_mcm::execution::ExecutionBuilder;
    use mcversi_mcm::{ProcessorId, Value};

    /// Builds the MP-shaped test used by the executions below:
    /// P0: W x; W y.  P1: R y; R x.
    fn mp_test() -> Test {
        let x = Address(0x100);
        let y = Address(0x200);
        Test::new(
            vec![
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Write, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Write, y),
                },
                Gene {
                    pid: 1,
                    op: Op::new(OpKind::Read, y),
                },
                Gene {
                    pid: 1,
                    op: Op::new(OpKind::Read, x),
                },
            ],
            2,
        )
    }

    /// One iteration where P1 observes `from_init` (both reads see 0) or the
    /// written values.
    fn mp_execution(reads_see_writes: bool) -> CandidateExecution {
        let x = Address(0x100);
        let y = Address(0x200);
        let mut b = ExecutionBuilder::new();
        let wx = b.write(ProcessorId(0), x, Value(1));
        let wy = b.write(ProcessorId(0), y, Value(2));
        let ry = b.read(
            ProcessorId(1),
            y,
            if reads_see_writes { Value(2) } else { Value(0) },
        );
        let rx = b.read(
            ProcessorId(1),
            x,
            if reads_see_writes { Value(1) } else { Value(0) },
        );
        if reads_see_writes {
            b.reads_from(wy, ry);
            b.reads_from(wx, rx);
        } else {
            b.reads_from_initial(ry);
            b.reads_from_initial(rx);
        }
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    #[test]
    fn deterministic_run_has_ndt_one() {
        let test = mp_test();
        let mut rc = RunConflicts::new();
        for _ in 0..5 {
            rc.add_iteration(&mp_execution(false));
        }
        assert_eq!(rc.iterations(), 5);
        let analysis = rc.analyze(&test);
        assert!(
            (analysis.ndt - 1.0).abs() < 1e-9,
            "identical iterations must give NDT = 1, got {}",
            analysis.ndt
        );
        assert!(analysis.fitaddrs.is_empty());
    }

    #[test]
    fn racy_run_has_ndt_above_one_and_fit_addresses() {
        let test = mp_test();
        let mut rc = RunConflicts::new();
        // The two reads observe different sources across iterations.
        rc.add_iteration(&mp_execution(false));
        rc.add_iteration(&mp_execution(true));
        let analysis = rc.analyze(&test);
        assert!(analysis.ndt > 1.0, "NDT = {}", analysis.ndt);
        // The reads (to x and y) have two distinct predecessors each, above
        // the rounded NDT of 1... or equal to NDT 1.5 rounded to 2; verify the
        // fit-address rule against the definition explicitly:
        let threshold = analysis.ndt.round() as usize;
        for (key, count) in &analysis.nde {
            if let EventKey::Op { pid, poi, .. } = key {
                let op = test.threads()[*pid as usize][*poi as usize];
                assert_eq!(
                    analysis.fitaddrs.contains(&op.addr) && *count > threshold,
                    *count > threshold,
                );
            }
        }
    }

    #[test]
    fn empty_analysis_is_safe() {
        let a = NdtAnalysis::empty();
        assert_eq!(a.ndt, 0.0);
        assert!(a.fitaddrs.is_empty());
        let rc = RunConflicts::new();
        assert!(rc.is_empty());
        assert_eq!(rc.len(), 0);
        let analysis = rc.analyze(&mp_test());
        assert_eq!(analysis.ndt, 0.0);
    }

    #[test]
    fn nde_counts_distinct_predecessors() {
        let test = mp_test();
        let mut rc = RunConflicts::new();
        rc.add_iteration(&mp_execution(false));
        rc.add_iteration(&mp_execution(true));
        let analysis = rc.analyze(&test);
        // The read of y (pid 1, poi 0) saw both the initial value and W y.
        let key = EventKey::Op {
            pid: 1,
            poi: 0,
            write: false,
        };
        assert_eq!(analysis.nde.get(&key), Some(&2));
    }
}
