//! High-level test operations (genes of the chromosome).
//!
//! Each node of a test's DAG is a high-level operation of one thread (paper
//! §3.3); the operation kinds and their default selection biases follow
//! Table 3.  Write values are *not* part of the representation — they are
//! assigned (globally unique) when the test is lowered to an executable
//! program, because the unique-value scheme is a property of execution, not of
//! the chromosome.

use mcversi_mcm::{Address, DepKind, FenceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a high-level test operation (paper Table 3, grown with the
/// dependency-carrying ops and fence flavours that targeting MCMs weaker than
/// TSO requires — §5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read into a register.
    Read,
    /// Read into a register with an address dependency on the previous read.
    ReadAddrDp,
    /// Write from a register.
    Write,
    /// Write whose data is computed from the previous read's value (a data
    /// dependency; relevant for relaxed target models).
    WriteDataDp,
    /// Write guarded by a branch on the previous read's value (a control
    /// dependency).
    WriteCtrlDp,
    /// Atomic read-modify-write (also an implicit fence on x86).
    ReadModifyWrite,
    /// Cache-line flush (`clflush`).
    CacheFlush,
    /// Constant delay (NOPs).
    Delay,
    /// A full memory fence (`mfence` / `dmb` / `sync`).  Not part of the
    /// default Table 3 mix (x86 RMWs already imply fences) but used by litmus
    /// tests and when targeting more relaxed models.
    Fence,
    /// An acquire-style fence (relaxed-model targets).
    FenceAcquire,
    /// A release-style fence (relaxed-model targets).
    FenceRelease,
    /// A Power `lwsync`-style lightweight fence (relaxed-model targets).
    FenceLw,
}

impl OpKind {
    /// All operation kinds (Table 3 order, then the explicit fences and
    /// dependency ops appended).
    pub const ALL: [OpKind; 12] = [
        OpKind::Read,
        OpKind::ReadAddrDp,
        OpKind::Write,
        OpKind::ReadModifyWrite,
        OpKind::CacheFlush,
        OpKind::Delay,
        OpKind::Fence,
        OpKind::WriteDataDp,
        OpKind::WriteCtrlDp,
        OpKind::FenceAcquire,
        OpKind::FenceRelease,
        OpKind::FenceLw,
    ];

    /// Returns `true` if the operation accesses memory (has a meaningful
    /// address attribute).
    pub fn is_memory_op(self) -> bool {
        !matches!(self, OpKind::Delay) && self.fence_kind().is_none()
    }

    /// Returns `true` if the operation reads memory.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            OpKind::Read | OpKind::ReadAddrDp | OpKind::ReadModifyWrite
        )
    }

    /// Returns `true` if the operation writes memory.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OpKind::Write | OpKind::WriteDataDp | OpKind::WriteCtrlDp | OpKind::ReadModifyWrite
        )
    }

    /// The dependency this operation carries on the previous read, if any.
    pub fn dep_kind(self) -> Option<DepKind> {
        match self {
            OpKind::ReadAddrDp => Some(DepKind::Addr),
            OpKind::WriteDataDp => Some(DepKind::Data),
            OpKind::WriteCtrlDp => Some(DepKind::Ctrl),
            _ => None,
        }
    }

    /// The fence flavour for fence operations, `None` otherwise.
    pub fn fence_kind(self) -> Option<FenceKind> {
        match self {
            OpKind::Fence => Some(FenceKind::Full),
            OpKind::FenceAcquire => Some(FenceKind::Acquire),
            OpKind::FenceRelease => Some(FenceKind::Release),
            OpKind::FenceLw => Some(FenceKind::LightweightSync),
            _ => None,
        }
    }

    /// The operation kind emitting the given fence flavour, if one exists.
    pub fn for_fence(kind: FenceKind) -> Option<OpKind> {
        match kind {
            FenceKind::Full => Some(OpKind::Fence),
            FenceKind::Acquire => Some(OpKind::FenceAcquire),
            FenceKind::Release => Some(OpKind::FenceRelease),
            FenceKind::LightweightSync => Some(OpKind::FenceLw),
            FenceKind::StoreStore | FenceKind::LoadLoad => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "Read",
            OpKind::ReadAddrDp => "ReadAddrDp",
            OpKind::Write => "Write",
            OpKind::WriteDataDp => "WriteDataDp",
            OpKind::WriteCtrlDp => "WriteCtrlDp",
            OpKind::ReadModifyWrite => "ReadModifyWrite",
            OpKind::CacheFlush => "CacheFlush",
            OpKind::Delay => "Delay",
            OpKind::Fence => "Fence",
            OpKind::FenceAcquire => "FenceAcquire",
            OpKind::FenceRelease => "FenceRelease",
            OpKind::FenceLw => "FenceLw",
        };
        f.write_str(s)
    }
}

/// A high-level operation: kind plus accessed address.
///
/// For `Delay` operations the address field carries the delay length in
/// cycles instead of an address (it is never interpreted as an address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// What the operation does.
    pub kind: OpKind,
    /// The accessed (8-byte aligned) address, or the delay length for
    /// [`OpKind::Delay`].
    pub addr: Address,
}

impl Op {
    /// Creates an operation.
    pub fn new(kind: OpKind, addr: Address) -> Self {
        Op { kind, addr }
    }

    /// Returns `true` if this is a memory operation with a valid `addr`
    /// attribute (mirrors Algorithm 1's `is_memop`).
    pub fn is_memop(&self) -> bool {
        self.kind.is_memory_op()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == OpKind::Delay {
            write!(f, "Delay({})", self.addr.0)
        } else {
            write!(f, "{} {}", self.kind, self.addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
        assert!(OpKind::ReadModifyWrite.is_read());
        assert!(OpKind::ReadModifyWrite.is_write());
        assert!(OpKind::CacheFlush.is_memory_op());
        assert!(!OpKind::CacheFlush.is_read());
        assert!(!OpKind::Delay.is_memory_op());
        assert!(!OpKind::Fence.is_memory_op());
        assert!(!OpKind::Fence.is_read());
        assert!(OpKind::WriteDataDp.is_write());
        assert!(OpKind::WriteCtrlDp.is_write());
        assert!(!OpKind::WriteDataDp.is_read());
        assert!(OpKind::WriteDataDp.is_memory_op());
        assert!(!OpKind::FenceLw.is_memory_op());
        assert_eq!(OpKind::ALL.len(), 12);
    }

    #[test]
    fn dep_and_fence_kind_mappings() {
        use mcversi_mcm::{DepKind, FenceKind};
        assert_eq!(OpKind::ReadAddrDp.dep_kind(), Some(DepKind::Addr));
        assert_eq!(OpKind::WriteDataDp.dep_kind(), Some(DepKind::Data));
        assert_eq!(OpKind::WriteCtrlDp.dep_kind(), Some(DepKind::Ctrl));
        assert_eq!(OpKind::Read.dep_kind(), None);
        assert_eq!(OpKind::Fence.fence_kind(), Some(FenceKind::Full));
        assert_eq!(OpKind::FenceAcquire.fence_kind(), Some(FenceKind::Acquire));
        assert_eq!(OpKind::FenceRelease.fence_kind(), Some(FenceKind::Release));
        assert_eq!(
            OpKind::FenceLw.fence_kind(),
            Some(FenceKind::LightweightSync)
        );
        assert_eq!(OpKind::Write.fence_kind(), None);
        for kind in [
            FenceKind::Full,
            FenceKind::Acquire,
            FenceKind::Release,
            FenceKind::LightweightSync,
        ] {
            assert_eq!(OpKind::for_fence(kind).unwrap().fence_kind(), Some(kind));
        }
        assert_eq!(OpKind::for_fence(FenceKind::StoreStore), None);
    }

    #[test]
    fn op_is_memop_mirrors_kind() {
        assert!(Op::new(OpKind::Read, Address(0x10)).is_memop());
        assert!(!Op::new(OpKind::Delay, Address(8)).is_memop());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            format!("{}", Op::new(OpKind::Read, Address(0x10))),
            "Read 0x10"
        );
        assert_eq!(
            format!("{}", Op::new(OpKind::Delay, Address(12))),
            "Delay(12)"
        );
    }
}
