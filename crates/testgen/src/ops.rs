//! High-level test operations (genes of the chromosome).
//!
//! Each node of a test's DAG is a high-level operation of one thread (paper
//! §3.3); the operation kinds and their default selection biases follow
//! Table 3.  Write values are *not* part of the representation — they are
//! assigned (globally unique) when the test is lowered to an executable
//! program, because the unique-value scheme is a property of execution, not of
//! the chromosome.

use mcversi_mcm::Address;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a high-level test operation (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read into a register.
    Read,
    /// Read into a register with an address dependency on the previous read.
    ReadAddrDp,
    /// Write from a register.
    Write,
    /// Atomic read-modify-write (also an implicit fence on x86).
    ReadModifyWrite,
    /// Cache-line flush (`clflush`).
    CacheFlush,
    /// Constant delay (NOPs).
    Delay,
    /// A full memory fence (`mfence`).  Not part of the default Table 3 mix
    /// (x86 RMWs already imply fences) but used by litmus tests and useful
    /// when targeting more relaxed models.
    Fence,
}

impl OpKind {
    /// All operation kinds (Table 3 order, plus the explicit fence).
    pub const ALL: [OpKind; 7] = [
        OpKind::Read,
        OpKind::ReadAddrDp,
        OpKind::Write,
        OpKind::ReadModifyWrite,
        OpKind::CacheFlush,
        OpKind::Delay,
        OpKind::Fence,
    ];

    /// Returns `true` if the operation accesses memory (has a meaningful
    /// address attribute).
    pub fn is_memory_op(self) -> bool {
        !matches!(self, OpKind::Delay | OpKind::Fence)
    }

    /// Returns `true` if the operation reads memory.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            OpKind::Read | OpKind::ReadAddrDp | OpKind::ReadModifyWrite
        )
    }

    /// Returns `true` if the operation writes memory.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write | OpKind::ReadModifyWrite)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "Read",
            OpKind::ReadAddrDp => "ReadAddrDp",
            OpKind::Write => "Write",
            OpKind::ReadModifyWrite => "ReadModifyWrite",
            OpKind::CacheFlush => "CacheFlush",
            OpKind::Delay => "Delay",
            OpKind::Fence => "Fence",
        };
        f.write_str(s)
    }
}

/// A high-level operation: kind plus accessed address.
///
/// For `Delay` operations the address field carries the delay length in
/// cycles instead of an address (it is never interpreted as an address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// What the operation does.
    pub kind: OpKind,
    /// The accessed (8-byte aligned) address, or the delay length for
    /// [`OpKind::Delay`].
    pub addr: Address,
}

impl Op {
    /// Creates an operation.
    pub fn new(kind: OpKind, addr: Address) -> Self {
        Op { kind, addr }
    }

    /// Returns `true` if this is a memory operation with a valid `addr`
    /// attribute (mirrors Algorithm 1's `is_memop`).
    pub fn is_memop(&self) -> bool {
        self.kind.is_memory_op()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == OpKind::Delay {
            write!(f, "Delay({})", self.addr.0)
        } else {
            write!(f, "{} {}", self.kind, self.addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
        assert!(OpKind::ReadModifyWrite.is_read());
        assert!(OpKind::ReadModifyWrite.is_write());
        assert!(OpKind::CacheFlush.is_memory_op());
        assert!(!OpKind::CacheFlush.is_read());
        assert!(!OpKind::Delay.is_memory_op());
        assert!(!OpKind::Fence.is_memory_op());
        assert!(!OpKind::Fence.is_read());
        assert_eq!(OpKind::ALL.len(), 7);
    }

    #[test]
    fn op_is_memop_mirrors_kind() {
        assert!(Op::new(OpKind::Read, Address(0x10)).is_memop());
        assert!(!Op::new(OpKind::Delay, Address(8)).is_memop());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            format!("{}", Op::new(OpKind::Read, Address(0x10))),
            "Read 0x10"
        );
        assert_eq!(
            format!("{}", Op::new(OpKind::Delay, Address(12))),
            "Delay(12)"
        );
    }
}
