//! The test (chromosome) representation.
//!
//! A test is a constant-size flat list of ⟨pid, op⟩ tuples (paper §3.3).  The
//! order of the list determines the relative position of operations, and the
//! per-thread projection of the list gives each thread's program order, which
//! is why crossover over the flat list preserves "relative scheduling
//! properties" of operations.  The number of genes is constant across
//! crossover, but the number of operations per thread is not.

use crate::ops::{Op, OpKind};
use mcversi_mcm::Address;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One gene: which thread the operation belongs to and the operation itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gene {
    /// Thread (processor) id in `[0, num_threads)`.
    pub pid: u32,
    /// The operation.
    pub op: Op,
}

impl fmt::Display for Gene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}: {}", self.pid, self.op)
    }
}

/// A test: a constant-size list of genes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Test {
    genes: Vec<Gene>,
    num_threads: usize,
}

impl Test {
    /// Creates a test from genes.
    ///
    /// # Panics
    ///
    /// Panics if any gene's pid is outside `[0, num_threads)`.
    pub fn new(genes: Vec<Gene>, num_threads: usize) -> Self {
        assert!(
            genes.iter().all(|g| (g.pid as usize) < num_threads),
            "gene pid out of range"
        );
        Test { genes, num_threads }
    }

    /// Number of genes (constant across crossover).
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Returns `true` if the test has no genes.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Number of threads the test may use.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The flat gene list.
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// Mutable access to one gene (used by mutation).
    pub fn gene_mut(&mut self, index: usize) -> &mut Gene {
        &mut self.genes[index]
    }

    /// Replaces one gene (used by crossover).
    pub fn set_gene(&mut self, index: usize, gene: Gene) {
        assert!((gene.pid as usize) < self.num_threads);
        self.genes[index] = gene;
    }

    /// The per-thread operation sequences (the DAG's disjoint sub-graphs), in
    /// program order.
    pub fn thread_ops(&self, pid: u32) -> Vec<Op> {
        self.genes
            .iter()
            .filter(|g| g.pid == pid)
            .map(|g| g.op)
            .collect()
    }

    /// All per-thread operation sequences indexed by pid.
    pub fn threads(&self) -> Vec<Vec<Op>> {
        (0..self.num_threads as u32)
            .map(|pid| self.thread_ops(pid))
            .collect()
    }

    /// Number of memory operations in the test.
    pub fn num_memory_ops(&self) -> usize {
        self.genes.iter().filter(|g| g.op.is_memop()).count()
    }

    /// Number of memory-model events the test gives rise to (RMWs count as
    /// two events; flushes and delays as none).
    pub fn num_events(&self) -> usize {
        self.genes
            .iter()
            .map(|g| match g.op.kind {
                OpKind::Read
                | OpKind::ReadAddrDp
                | OpKind::Write
                | OpKind::WriteDataDp
                | OpKind::WriteCtrlDp => 1,
                OpKind::ReadModifyWrite => 2,
                OpKind::CacheFlush
                | OpKind::Delay
                | OpKind::Fence
                | OpKind::FenceAcquire
                | OpKind::FenceRelease
                | OpKind::FenceLw => 0,
            })
            .sum()
    }

    /// The set of distinct addresses accessed by memory operations.
    pub fn addresses(&self) -> BTreeSet<Address> {
        self.genes
            .iter()
            .filter(|g| g.op.is_memop())
            .map(|g| g.op.addr)
            .collect()
    }

    /// The fraction of memory operations whose address is in `fitaddrs`
    /// (Algorithm 1's `fitaddr_fraction`).
    pub fn fitaddr_fraction(&self, fitaddrs: &BTreeSet<Address>) -> f64 {
        let mem_ops: Vec<&Gene> = self.genes.iter().filter(|g| g.op.is_memop()).collect();
        if mem_ops.is_empty() {
            return 0.0;
        }
        let hits = mem_ops
            .iter()
            .filter(|g| fitaddrs.contains(&g.op.addr))
            .count();
        hits as f64 / mem_ops.len() as f64
    }

    /// Number of operations per thread (for diagnostics; not constant).
    pub fn ops_per_thread(&self) -> Vec<usize> {
        (0..self.num_threads as u32)
            .map(|pid| self.genes.iter().filter(|g| g.pid == pid).count())
            .collect()
    }
}

impl fmt::Display for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "test with {} genes, {} threads:",
            self.len(),
            self.num_threads
        )?;
        for (pid, ops) in self.threads().iter().enumerate() {
            write!(f, "  P{pid}:")?;
            for op in ops {
                write!(f, " [{op}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;

    fn gene(pid: u32, kind: OpKind, addr: u64) -> Gene {
        Gene {
            pid,
            op: Op::new(kind, Address(addr)),
        }
    }

    fn sample() -> Test {
        Test::new(
            vec![
                gene(0, OpKind::Write, 0x100),
                gene(1, OpKind::Read, 0x100),
                gene(0, OpKind::Write, 0x200),
                gene(1, OpKind::Read, 0x200),
                gene(0, OpKind::Delay, 8),
                gene(1, OpKind::ReadModifyWrite, 0x300),
            ],
            2,
        )
    }

    #[test]
    fn thread_projection_preserves_order() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.num_threads(), 2);
        let t0 = t.thread_ops(0);
        assert_eq!(t0.len(), 3);
        assert_eq!(t0[0].addr, Address(0x100));
        assert_eq!(t0[1].addr, Address(0x200));
        let t1 = t.thread_ops(1);
        assert_eq!(t1.len(), 3);
        assert_eq!(t.ops_per_thread(), vec![3, 3]);
    }

    #[test]
    fn event_and_memory_op_counts() {
        let t = sample();
        // Delay is not a memory op; RMW counts as one memory op, two events.
        assert_eq!(t.num_memory_ops(), 5);
        assert_eq!(t.num_events(), 6);
    }

    #[test]
    fn addresses_are_deduplicated() {
        let t = sample();
        let addrs = t.addresses();
        assert_eq!(
            addrs.len(),
            3,
            "0x100, 0x200 and 0x300; the delay is not a memory op"
        );
    }

    #[test]
    fn fitaddr_fraction_counts_memory_ops_only() {
        let t = sample();
        let fit: BTreeSet<Address> = [Address(0x100)].into_iter().collect();
        // Two of the five memory ops touch 0x100.
        assert!((t.fitaddr_fraction(&fit) - 0.4).abs() < 1e-9);
        assert_eq!(t.fitaddr_fraction(&BTreeSet::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "pid out of range")]
    fn out_of_range_pid_rejected() {
        Test::new(vec![gene(5, OpKind::Read, 0x100)], 2);
    }

    #[test]
    fn set_gene_replaces_in_place() {
        let mut t = sample();
        t.set_gene(0, gene(1, OpKind::Read, 0x400));
        assert_eq!(t.genes()[0].pid, 1);
        assert_eq!(t.genes()[0].op.addr, Address(0x400));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn display_lists_threads() {
        let t = sample();
        let s = format!("{t}");
        assert!(s.contains("P0:"));
        assert!(s.contains("P1:"));
    }
}
