//! Prints the enumerated litmus corpus at a given bound (default 4x6):
//! name, threads, edges and the per-model verdict row.
//!
//! Usage: `cargo run -p mcversi-testgen --example corpus_stats [TxE]`

use mcversi_mcm::ModelKind;
use mcversi_testgen::enumerate::{enumerate, LitmusCorpus};

fn main() {
    let bounds = match std::env::args().nth(1) {
        None => Default::default(),
        Some(arg) => {
            let parsed = LitmusCorpus::parse(&format!("enumerated:{arg}")).and_then(|c| c.bounds());
            match parsed {
                Some(bounds) => bounds,
                None => {
                    eprintln!(
                        "corpus_stats: invalid bounds `{arg}` (expected TxE, \
                         e.g. 2x4, with 2..=6 threads and 4..=8 edges)"
                    );
                    std::process::exit(2);
                }
            }
        }
    };
    let corpus = enumerate(&bounds);
    println!(
        "{} canonical tests at {} threads x {} edges",
        corpus.len(),
        bounds.max_threads,
        bounds.max_edges
    );
    let header: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
    println!("{:<28} T  E  {}", "name", header.join("  "));
    for t in corpus.iter() {
        let row: Vec<&str> = t
            .forbidden
            .iter()
            .map(|&f| if f { "forbid" } else { "allow " })
            .collect();
        println!(
            "{:<28} {}  {}  {}",
            t.name,
            t.cycle.num_threads(),
            t.cycle.len(),
            row.join("  ")
        );
    }
}
