//! Cross-crate integration tests: the full verification flow.
//!
//! These tests exercise the complete stack — test generation → lowering →
//! simulation → observation → checking → fitness → campaign — the way a user
//! of the framework would.

use mcversi::core::{
    run_campaign, run_samples, CampaignConfig, GeneratorKind, McVerSiConfig, TestRunner,
};
use mcversi::sim::{Bug, BugConfig, ProtocolKind};
use std::time::Duration;

fn quick_campaign(generator: GeneratorKind, bug: Option<Bug>, runs: usize) -> CampaignConfig {
    let mcversi = McVerSiConfig::small().with_iterations(3).with_test_size(48);
    CampaignConfig::new(generator, bug, mcversi, runs, Duration::from_secs(90))
}

#[test]
fn correct_design_never_fails_for_any_generator() {
    for generator in [
        GeneratorKind::McVerSiAll,
        GeneratorKind::McVerSiRand,
        GeneratorKind::DiyLitmus,
    ] {
        let result = run_campaign(&quick_campaign(generator, None, 15), 5);
        assert!(
            !result.found,
            "{generator} reported a bug on the correct design: {:?}",
            result.detail
        );
        assert_eq!(result.test_runs, 15);
        assert!(result.max_total_coverage > 0.0);
    }
}

#[test]
fn pipeline_bugs_are_found_by_the_gp_generator() {
    // The two pipeline bugs are the easiest in the paper's Table 4 (found in
    // well under an hour by every McVerSi generator); the GP generator must
    // find them within a small budget here.
    for bug in [Bug::LqNoTso, Bug::SqNoFifo] {
        let result = run_campaign(
            &quick_campaign(GeneratorKind::McVerSiAll, Some(bug), 120),
            11,
        );
        assert!(result.found, "{bug} not found by McVerSi-ALL: {result:?}");
    }
}

#[test]
fn mesi_invalidation_forwarding_bug_is_found() {
    // MESI,LQ+IS,Inv: the headline real gem5 bug of the paper — the coherence
    // protocol sinks an invalidation in the IS transient state and never
    // forwards it to the load queue.  It is found quickly here by random
    // generation with a constrained address range (the other MESI,LQ bugs
    // need a larger budget; they are exercised by the Table 4 binary).
    let result = run_campaign(
        &quick_campaign(GeneratorKind::McVerSiRand, Some(Bug::MesiLqIsInv), 150),
        3,
    );
    assert!(result.found, "MESI,LQ+IS,Inv not found: {result:?}");
}

#[test]
fn tsocc_bugs_run_on_the_tsocc_protocol() {
    // The campaign must switch the system to TSO-CC automatically; whether the
    // bug is found within this small budget is not asserted (the paper needed
    // hours), but the runs must be well formed and non-trivial.
    let cfg = quick_campaign(GeneratorKind::McVerSiRand, Some(Bug::TsoCcCompare), 20);
    assert_eq!(cfg.effective_mcversi().system.protocol, ProtocolKind::TsoCc);
    let result = run_campaign(&cfg, 1);
    assert!(result.test_runs >= 1);
    assert!(result.simulated_cycles > 0);
}

#[test]
fn parallel_samples_are_reproducible_per_seed() {
    let cfg = quick_campaign(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso), 30);
    let a = run_samples(&cfg, 2, 100);
    let b = run_samples(&cfg, 2, 100);
    assert_eq!(a.len(), 2);
    // Same seeds => same outcome and same discovery point.
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.seed, rb.seed);
        assert_eq!(ra.found, rb.found);
        assert_eq!(ra.found_at_run, rb.found_at_run);
        assert_eq!(ra.test_runs, rb.test_runs);
    }
}

#[test]
fn gp_runner_improves_population_ndt_with_small_memory() {
    // With 1 KB-style constrained memory the initial population is already
    // racy (NDT > 1); the engine must at least sustain it.
    use mcversi::core::TestSource;
    let config = McVerSiConfig::small().with_iterations(3).with_test_size(48);
    let params = config.testgen.clone();
    let mut runner = TestRunner::new(config, BugConfig::none());
    let mut source = TestSource::new(GeneratorKind::McVerSiAll, params, 13);
    let mut last_ndt = 0.0;
    for _ in 0..40 {
        let (id, test, _) = source.next_test();
        let result = runner.run_test(&test);
        source.feedback(id, &result);
        last_ndt = source.population_mean_ndt();
    }
    assert!(
        last_ndt > 1.0,
        "population mean NDT should exceed 1.0, got {last_ndt}"
    );
}
