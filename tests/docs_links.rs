//! Documentation freshness: every workspace path referenced by the
//! architecture docs must exist.
//!
//! `cargo doc -D warnings` (run in CI) already catches stale *rustdoc* links;
//! this test covers the Markdown side, so a refactor that moves or deletes a
//! file fails tier-1 until `ARCHITECTURE.md` / `README.md` are updated.

use std::path::Path;

/// Extracts workspace-relative path candidates from a Markdown document:
/// inline-code spans that look like paths (contain a `/` or end in a known
/// extension) and the targets of relative Markdown links.
fn referenced_paths(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    // `code span` references.
    for piece in markdown.split('`').skip(1).step_by(2) {
        let candidate = piece.trim().trim_end_matches('/');
        let path_like = candidate.contains('/')
            || Path::new(candidate)
                .extension()
                .is_some_and(|e| ["rs", "md", "toml", "yml", "lock"].iter().any(|x| e == *x));
        if path_like
            && !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._-/".contains(c))
        {
            out.push(candidate.to_string());
        }
    }
    // [text](target) links to workspace files (skip URLs and anchors).
    for (i, _) in markdown.match_indices("](") {
        let rest = &markdown[i + 2..];
        if let Some(end) = rest.find(')') {
            let target = rest[..end].trim();
            if !target.is_empty()
                && !target.starts_with("http")
                && !target.starts_with('#')
                && !target.contains(' ')
            {
                out.push(target.split('#').next().unwrap_or(target).to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn check_doc(doc: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join(doc)).unwrap_or_else(|e| {
        panic!("{doc} must exist and be readable: {e}");
    });
    let mut stale = Vec::new();
    for path in referenced_paths(&text) {
        if !root.join(&path).exists() {
            stale.push(path);
        }
    }
    assert!(
        stale.is_empty(),
        "{doc} references paths that no longer exist: {stale:?}"
    );
}

#[test]
fn architecture_doc_links_are_live() {
    check_doc("ARCHITECTURE.md");
}

/// The checked-in example spec the docs and CI point at must stay parseable
/// (and must describe the documented cell).
#[test]
fn example_scenario_spec_is_valid() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("examples/scenario.json");
    let text = std::fs::read_to_string(&path).expect("examples/scenario.json must exist");
    let spec = mcversi::core::ScenarioSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("examples/scenario.json is stale: {e}"));
    assert_eq!(spec.generator, mcversi::core::GeneratorKind::McVerSiAll);
    assert!(!spec.full, "the example describes the scaled-down system");
    // And it round-trips: re-serialising reproduces an equivalent spec.
    let again = mcversi::core::ScenarioSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(again, spec);
}

#[test]
fn readme_doc_links_are_live() {
    check_doc("README.md");
}

#[test]
fn path_extraction_finds_code_spans_and_links() {
    let md = "see `crates/sim/src/core.rs` and [the readme](README.md), \
              not `just code` or [a site](https://example.com) or [anchor](#x)";
    let paths = referenced_paths(md);
    assert!(paths.contains(&"crates/sim/src/core.rs".to_string()));
    assert!(paths.contains(&"README.md".to_string()));
    assert!(!paths.iter().any(|p| p.contains("example.com")));
    assert!(!paths.iter().any(|p| p.starts_with('#')));
}
