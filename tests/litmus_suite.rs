//! Integration test: the full x86-TSO litmus suite on both correct protocols.
//!
//! Every shape of the diy-style suite must satisfy TSO on the correct MESI and
//! TSO-CC designs — this is the strongest "no false positives" statement the
//! repository makes, and it runs the complete simulator + observer + checker
//! path for every shape.

use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::sim::{BugConfig, ProtocolKind};
use mcversi::testgen::litmus;

fn run_suite(protocol: ProtocolKind, repeats: usize, seed: u64) {
    let suite = litmus::default_suite();
    let mut config = McVerSiConfig::small().with_iterations(2).with_seed(seed);
    config.system.protocol = protocol;
    let mut runner = TestRunner::new(config, BugConfig::none());
    for t in &suite {
        let test = litmus::repeat_test(&t.test, repeats);
        let result = runner.run_test(&test);
        assert!(
            !result.verdict.is_bug(),
            "{} violated TSO on correct {}: {:?}",
            t.name,
            protocol.name(),
            result.verdict
        );
    }
    assert!(
        runner.total_coverage() > 0.2,
        "suite exercised little of the protocol"
    );
}

#[test]
fn litmus_suite_passes_on_correct_mesi() {
    run_suite(ProtocolKind::Mesi, 4, 21);
}

#[test]
fn litmus_suite_passes_on_correct_tsocc() {
    run_suite(ProtocolKind::TsoCc, 4, 22);
}

#[test]
fn suite_has_the_paper_size() {
    assert!(litmus::default_suite().len() >= 38);
}
