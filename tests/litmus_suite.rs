//! Integration test: the full x86-TSO litmus suite on both correct protocols.
//!
//! Every shape of the diy-style suite must satisfy TSO on the correct MESI and
//! TSO-CC designs — this is the strongest "no false positives" statement the
//! repository makes, and it runs the complete simulator + observer + checker
//! path for every shape.

use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::sim::{BugConfig, ProtocolKind};
use mcversi::testgen::litmus;

fn run_suite(protocol: ProtocolKind, repeats: usize, seed: u64) {
    let suite = litmus::default_suite();
    let mut config = McVerSiConfig::small().with_iterations(2).with_seed(seed);
    config.system.protocol = protocol;
    let mut runner = TestRunner::new(config, BugConfig::none());
    for t in &suite {
        let test = litmus::repeat_test(&t.test, repeats);
        let result = runner.run_test(&test);
        assert!(
            !result.verdict.is_bug(),
            "{} violated TSO on correct {}: {:?}",
            t.name,
            protocol.name(),
            result.verdict
        );
    }
    assert!(
        runner.total_coverage() > 0.2,
        "suite exercised little of the protocol"
    );
}

#[test]
fn litmus_suite_passes_on_correct_mesi() {
    run_suite(ProtocolKind::Mesi, 4, 21);
}

#[test]
fn litmus_suite_passes_on_correct_tsocc() {
    run_suite(ProtocolKind::TsoCc, 4, 22);
}

#[test]
fn suite_has_the_paper_size() {
    assert!(litmus::default_suite().len() >= 38);
}

/// End-to-end oracle cross-check (sound-by-construction): run the toy-scale
/// enumerated corpus through the simulator on both core strengths and every
/// model, and assert the checker verdict never contradicts the enumerator's
/// "forbidden" prediction.
///
/// The contract: correct hardware of strength `H` only produces executions
/// its architectural contract allows (strong core: TSO and weaker; relaxed
/// core: ARMish/POWERish/RMO).  A cycle the enumerator marks *forbidden*
/// under such a model is therefore unreachable on the correct design — if
/// the checker nevertheless reports a violation, either the oracle, the
/// checker or the lowering is wrong.  For models *stronger* than the
/// hardware (SC everywhere; TSO on the relaxed core) violations are
/// architecturally expected; those pairs still run (exercising checker and
/// corpus) and must at least stay free of protocol faults and hangs.
#[test]
fn enumerated_corpus_oracle_cross_check_at_toy_scale() {
    use mcversi::mcm::ModelKind;
    use mcversi::sim::CoreStrength;
    use mcversi::testgen::enumerate::{enumerate, EnumerationBounds};

    let corpus = enumerate(&EnumerationBounds::new(2, 4));
    assert!(corpus.len() >= 50, "toy corpus too small: {}", corpus.len());
    let locations = [
        mcversi::mcm::Address(0x10_0000),
        mcversi::mcm::Address(0x10_0040),
        mcversi::mcm::Address(0x10_0080),
    ];
    let sound = |core: CoreStrength, model: ModelKind| match core {
        CoreStrength::Strong => model != ModelKind::Sc,
        CoreStrength::Relaxed => model.is_relaxed(),
    };

    let mut expected_violations = 0usize;
    for core in CoreStrength::ALL {
        for model in ModelKind::ALL {
            let mut config = McVerSiConfig::small().with_iterations(1).with_seed(97);
            config.system.core_strength = core;
            let config = config.retarget(model);
            let mut runner = TestRunner::new(config, BugConfig::none());
            for test in corpus.iter() {
                let lowered = test.litmus(&locations);
                let repeated = litmus::repeat_test(&lowered.test, 4);
                let result = runner.run_test(&repeated);
                match &result.verdict {
                    v if !v.is_bug() => {}
                    mcversi::core::RunVerdict::McmViolation(violation) => {
                        assert!(
                            !sound(core, model),
                            "{} on the correct {core} core violated {model} \
                             (axiom {}), contradicting the enumerator's prediction \
                             (forbidden={})",
                            test.name,
                            violation.axiom,
                            test.forbidden_under(model),
                        );
                        expected_violations += 1;
                    }
                    other => panic!("{} under {model}/{core}: {other:?}", test.name),
                }
            }
        }
    }
    // The sweep must bite: hardware weaker than the model does get flagged
    // (the strong core's store buffer alone breaks SC), otherwise the
    // soundness half of the check would be vacuous.
    assert!(
        expected_violations > 0,
        "no architecturally-expected violation observed — toy runs too short?"
    );
}
