//! Differential conformance sweep for the vector-clock checker.
//!
//! The vector-clock first pass (`mcversi-conformance`) promises:
//!
//! * under SC and TSO it **decides** every well-formed execution (never
//!   abstains) and its verdict is exactly the axiomatic checker's;
//! * under the dependency-ordered models it may abstain, but a decided
//!   verdict never contradicts the axiomatic checker;
//! * a campaign run with `CheckingMode::Vc` reaches the verdict of
//!   per-execution checking — same `found`, same detail, same discovering
//!   run.
//!
//! These are the load-bearing assumptions behind using vc as the default
//! fast path in `mcversi-check` and behind the `MCVERSI_CHECKING=vc` knob.

use mcversi::conformance::VcChecker;
use mcversi::core::lowering::lower;
use mcversi::mcm::checker::Checker;
use mcversi::mcm::execution::ExecutionBuilder;
use mcversi::mcm::{
    Address, CandidateExecution, DepKind, EventId, FenceKind, ModelKind, ProcessorId, Value,
};
use mcversi::sim::{BugConfig, CoreStrength, ProtocolKind, System, SystemConfig};
use mcversi::testgen::{OperationBias, RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arbitrary well-formed candidate execution (same shape as the generator in
/// `tests/properties.rs`, seeded from a disjoint range): random threads of
/// reads, writes, dependency-carrying ops, RMWs and every fence flavour, with
/// random reads-from choices and random per-address coherence permutations.
fn random_execution(seed: u64) -> CandidateExecution {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExecutionBuilder::new();
    let threads = rng.gen_range(2..5u32);
    let num_addrs = rng.gen_range(2..4u64);
    let addr = |i: u64| Address(0x1000 + i * 0x40);
    let mut reads: Vec<(EventId, Address)> = Vec::new();
    let mut writes: Vec<(EventId, Address, Value)> = Vec::new();
    let mut next_value = 1u64;

    for t in 0..threads {
        let pid = ProcessorId(t);
        let mut last_load: Option<EventId> = None;
        for _ in 0..rng.gen_range(2..7usize) {
            let a = addr(rng.gen_range(0..num_addrs));
            match rng.gen_range(0..100u32) {
                0..=29 => {
                    let r = b.read(pid, a, Value(0));
                    if rng.gen_bool(0.4) {
                        if let Some(src) = last_load {
                            b.dependency(DepKind::Addr, src, r);
                        }
                    }
                    reads.push((r, a));
                    last_load = Some(r);
                }
                30..=64 => {
                    let w = b.write(pid, a, Value(next_value));
                    if rng.gen_bool(0.4) {
                        if let Some(src) = last_load {
                            let kind = if rng.gen_bool(0.5) {
                                DepKind::Data
                            } else {
                                DepKind::Ctrl
                            };
                            b.dependency(kind, src, w);
                        }
                    }
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                }
                65..=79 => {
                    let kind = FenceKind::ALL[rng.gen_range(0..FenceKind::ALL.len())];
                    b.fence(pid, kind);
                }
                _ => {
                    let (r, w) = b.rmw(pid, a, Value(0), Value(next_value));
                    reads.push((r, a));
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                    last_load = None;
                }
            }
        }
    }

    for &(r, a) in &reads {
        let candidates: Vec<(EventId, Value)> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, v)| (w, v))
            .collect();
        if candidates.is_empty() || rng.gen_bool(0.25) {
            b.reads_from_initial(r);
        } else {
            let (w, v) = candidates[rng.gen_range(0..candidates.len())];
            b.set_event_value(r, v);
            b.reads_from(w, r);
        }
    }

    for i in 0..num_addrs {
        let a = addr(i);
        let mut order: Vec<EventId> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, _)| w)
            .collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        if let Some(&first) = order.first() {
            b.coherence_after_initial(first);
        }
        for pair in order.windows(2) {
            b.coherence(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Asserts the conformance contract of one (execution, model) pair.
fn assert_conforms(exec: &CandidateExecution, model: ModelKind, context: &str) -> bool {
    let vc = VcChecker::new(model).check(exec);
    let axiomatic = Checker::new(model.instance()).check(exec);
    if model.is_relaxed() {
        if vc.is_abstain() {
            return false;
        }
    } else {
        assert!(
            !vc.is_abstain(),
            "{context}: vc abstained under {model} (SC/TSO must decide): {vc}"
        );
    }
    assert_eq!(
        vc.is_violation(),
        axiomatic.is_violation(),
        "{context}: vc ({vc}) contradicts the axiomatic checker under {model}"
    );
    vc.is_violation()
}

/// 500 random executions × SC and TSO: vc decides every one of them with the
/// axiomatic checker's verdict; under the three dependency-ordered models a
/// decided vc verdict never contradicts the checker.
#[test]
fn vc_matches_the_axiomatic_checker_on_500_random_executions() {
    let mut valid = 0usize;
    let mut violating = 0usize;
    let mut weak_decided = 0usize;
    for seed in 20_000..20_500u64 {
        let exec = random_execution(seed);
        assert!(exec.validate().is_ok(), "seed {seed} malformed");
        for model in [ModelKind::Sc, ModelKind::Tso] {
            if assert_conforms(&exec, model, &format!("seed {seed}")) {
                violating += 1;
            } else {
                valid += 1;
            }
        }
        for model in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
            let vc = VcChecker::new(model).check(&exec);
            if !vc.is_abstain() {
                weak_decided += 1;
                let axiomatic = Checker::new(model.instance()).check(&exec);
                assert_eq!(
                    vc.is_violation(),
                    axiomatic.is_violation(),
                    "seed {seed}: decided vc verdict contradicts the checker under {model}"
                );
            }
        }
    }
    // The sweep must discriminate, otherwise the property is vacuous.
    assert!(
        valid > 0 && violating > 0,
        "sweep saw {valid} valid / {violating} violating SC+TSO verdicts"
    );
    assert!(
        weak_decided > 0,
        "vc must decide at least some executions under the weak models"
    );
}

/// Simulator-produced executions at both core strengths, checked under every
/// model: the vc verdict never contradicts the axiomatic checker, and under
/// SC/TSO it always decides.
#[test]
fn vc_conforms_on_simulator_executions_at_both_core_strengths() {
    for strength in CoreStrength::ALL {
        let mut cfg = SystemConfig::small(ProtocolKind::Mesi);
        cfg.core_strength = strength;
        let mut sys = System::new(cfg, BugConfig::none(), 23);
        let mut params = TestGenParams::small().with_threads(4).with_test_size(40);
        if strength == CoreStrength::Relaxed {
            params.bias = OperationBias::relaxed_default();
        }
        let gen = RandomTestGenerator::new(params);
        let mut complete = 0usize;
        for seed in 0..15u64 {
            let program = lower(&gen.generate(&mut StdRng::seed_from_u64(seed)));
            let outcome = sys.run_iteration(&program);
            assert!(
                outcome.protocol_errors.is_empty(),
                "seed {seed} ({strength:?}): {:?}",
                outcome.protocol_errors
            );
            if !outcome.complete {
                continue;
            }
            complete += 1;
            for model in ModelKind::ALL {
                assert_conforms(
                    &outcome.execution,
                    model,
                    &format!("seed {seed} ({strength:?})"),
                );
            }
        }
        assert!(
            complete > 5,
            "too few complete runs under {strength:?}: {complete}"
        );
    }
}

/// Campaign-level equivalence: over 20 seeds rotating through every model,
/// both core strengths, bug on/off and all four test sources, a campaign run
/// with the vector-clock first pass reaches exactly the verdict of
/// per-execution checking — same `found`, same detail, same discovering run.
#[test]
fn vc_checking_is_verdict_equivalent_across_a_20_seed_sweep() {
    use mcversi::core::{run_campaign, CampaignConfig, CheckingMode, GeneratorKind, McVerSiConfig};
    use mcversi::sim::Bug;
    use std::time::Duration;

    let mut executions_seen = 0u64;
    let mut oracle_valid = 0u64;
    for seed in 0..20u64 {
        let model = ModelKind::ALL[(seed % 5) as usize];
        let core = [CoreStrength::Strong, CoreStrength::Relaxed][(seed % 2) as usize];
        let bug = if (seed / 2) % 2 == 0 {
            None
        } else {
            Some(Bug::LqNoTso)
        };
        let generator = GeneratorKind::ALL[(seed % 4) as usize];
        let mut mcversi = McVerSiConfig::small()
            .with_test_size(24)
            .with_iterations(2)
            .retarget(model);
        mcversi.system.core_strength = core;
        let base = CampaignConfig::new(generator, bug, mcversi, 3, Duration::from_secs(60));
        let per = run_campaign(&base, seed);
        let vc = run_campaign(&base.clone().with_checking(CheckingMode::Vc), seed);
        assert_eq!(
            (per.found, &per.detail, per.found_at_run),
            (vc.found, &vc.detail, vc.found_at_run),
            "seed {seed} ({generator}/{model}/{core:?}/{bug:?}): verdicts diverge"
        );
        let dedup = vc.dedup.expect("vc mode reports dedup stats");
        executions_seen += dedup.executions;
        oracle_valid += dedup.oracle_valid;
    }
    assert!(
        executions_seen > 0,
        "the sweep must actually exercise the vc path"
    );
    assert!(
        oracle_valid > 0,
        "the vc first pass must certify at least some executions without the checker"
    );
}
