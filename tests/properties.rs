//! Property-based integration tests (proptest) over the whole stack.
//!
//! These check the invariants the rest of the framework relies on:
//!
//! * lowering always produces programs with unique, non-zero write values;
//! * both crossover operators preserve test size and thread validity for
//!   arbitrary parents and fit-address sets;
//! * the simulator is deterministic per seed and the correct design never
//!   produces a TSO violation, for arbitrary generated tests;
//! * relation algebra: transitive closure is idempotent and topological sort
//!   exists exactly for acyclic relations;
//! * model strength is monotone: on arbitrary well-formed candidate
//!   executions (with dependencies and every fence flavour), acceptance
//!   implies acceptance down the chain `SC ⇒ TSO ⇒ {ARMish, POWERish} ⇒ RMO`;
//! * the relaxed simulator core is *sound* for the dependency-ordered models
//!   (arbitrary generated tests never produce an ARMish/POWERish/RMO
//!   violation on the correct design) while being *genuinely weaker* than
//!   SC/TSO (sampled runs exhibit forbidden reorderings).

use mcversi::core::lowering::lower;
use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::mcm::checker::Checker;
use mcversi::mcm::execution::ExecutionBuilder;
use mcversi::mcm::relation::Relation;
use mcversi::mcm::{
    Address, CandidateExecution, DepKind, EventId, FenceKind, ModelKind, ProcessorId, Value,
};
use mcversi::sim::BugConfig;
use mcversi::testgen::ndt::NdtAnalysis;
use mcversi::testgen::{
    selective_crossover_mutate, single_point_crossover_mutate, RandomTestGenerator, TestGenParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn small_params(test_size: usize) -> TestGenParams {
    TestGenParams::small()
        .with_test_size(test_size)
        .with_threads(4)
}

/// Generates an arbitrary *well-formed* candidate execution: random threads
/// of reads, writes, dependency-carrying ops, RMWs and fences of every
/// flavour; each read observes a randomly chosen same-address write (or the
/// initial value) and the per-address coherence orders are random
/// permutations.  Most of these executions are wildly weak — exactly the
/// input the monotonicity property needs.
fn random_execution(seed: u64) -> CandidateExecution {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExecutionBuilder::new();
    let threads = rng.gen_range(2..5u32);
    let num_addrs = rng.gen_range(2..4u64);
    let addr = |i: u64| Address(0x1000 + i * 0x40);
    let mut reads: Vec<(EventId, Address)> = Vec::new();
    let mut writes: Vec<(EventId, Address, Value)> = Vec::new();
    let mut next_value = 1u64;

    for t in 0..threads {
        let pid = ProcessorId(t);
        let mut last_load: Option<EventId> = None;
        for _ in 0..rng.gen_range(2..7usize) {
            let a = addr(rng.gen_range(0..num_addrs));
            match rng.gen_range(0..100u32) {
                0..=29 => {
                    let r = b.read(pid, a, Value(0));
                    if rng.gen_bool(0.4) {
                        if let Some(src) = last_load {
                            b.dependency(DepKind::Addr, src, r);
                        }
                    }
                    reads.push((r, a));
                    last_load = Some(r);
                }
                30..=64 => {
                    let w = b.write(pid, a, Value(next_value));
                    if rng.gen_bool(0.4) {
                        if let Some(src) = last_load {
                            let kind = if rng.gen_bool(0.5) {
                                DepKind::Data
                            } else {
                                DepKind::Ctrl
                            };
                            b.dependency(kind, src, w);
                        }
                    }
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                }
                65..=79 => {
                    let kind = FenceKind::ALL[rng.gen_range(0..FenceKind::ALL.len())];
                    b.fence(pid, kind);
                }
                _ => {
                    let (r, w) = b.rmw(pid, a, Value(0), Value(next_value));
                    reads.push((r, a));
                    writes.push((w, a, Value(next_value)));
                    next_value += 1;
                    last_load = None; // RMW reads are not forwarding sources here
                }
            }
        }
    }

    // Reads-from: every read picks a random same-address write or the
    // initial value; the read's value is patched to match.
    for &(r, a) in &reads {
        let candidates: Vec<(EventId, Value)> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, v)| (w, v))
            .collect();
        if candidates.is_empty() || rng.gen_bool(0.25) {
            b.reads_from_initial(r);
        } else {
            let (w, v) = candidates[rng.gen_range(0..candidates.len())];
            b.set_event_value(r, v);
            b.reads_from(w, r);
        }
    }

    // Coherence: a random permutation per address, chained.
    for i in 0..num_addrs {
        let a = addr(i);
        let mut order: Vec<EventId> = writes
            .iter()
            .filter(|&&(_, wa, _)| wa == a)
            .map(|&(w, _, _)| w)
            .collect();
        // Fisher–Yates with the test's RNG.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        if let Some(&first) = order.first() {
            b.coherence_after_initial(first);
        }
        for pair in order.windows(2) {
            b.coherence(pair[0], pair[1]);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lowering_always_produces_unique_nonzero_write_values(seed in 0u64..1000, size in 8usize..96) {
        let params = small_params(size);
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(seed));
        let program = lower(&test);
        prop_assert!(program.written_values_unique());
        prop_assert_eq!(program.total_ops(), size);
    }

    #[test]
    fn crossover_preserves_size_and_threads(
        seed in 0u64..1000,
        size in 8usize..64,
        fit_count in 0usize..6,
    ) {
        let params = small_params(size);
        let gen = RandomTestGenerator::new(params.clone());
        let t1 = gen.generate(&mut StdRng::seed_from_u64(seed));
        let t2 = gen.generate(&mut StdRng::seed_from_u64(seed + 1));
        let mut a1 = NdtAnalysis::empty();
        a1.ndt = 1.5;
        a1.fitaddrs = t1.addresses().into_iter().take(fit_count).collect();
        let mut a2 = NdtAnalysis::empty();
        a2.ndt = 2.5;
        a2.fitaddrs = t2.addresses().into_iter().take(fit_count).collect();
        let mut rng = StdRng::seed_from_u64(seed + 2);

        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &params, &mut rng);
        prop_assert_eq!(child.len(), size);
        prop_assert_eq!(child.num_threads(), t1.num_threads());
        prop_assert!(child.genes().iter().all(|g| (g.pid as usize) < child.num_threads()));

        let child = single_point_crossover_mutate(&t1, &t2, &params, &mut rng);
        prop_assert_eq!(child.len(), size);
        prop_assert!(child.genes().iter().all(|g| (g.pid as usize) < child.num_threads()));
    }

    /// Model strength is monotone: on arbitrary well-formed executions, an
    /// execution accepted by a stronger model is accepted by every weaker
    /// model in the chain `SC ⇒ TSO ⇒ {ARMish, POWERish} ⇒ RMO`.
    #[test]
    fn model_strength_is_monotone_on_random_executions(seed in 0u64..2000) {
        let exec = random_execution(seed);
        prop_assert!(exec.validate().is_ok(), "malformed: {:?}", exec.validate());
        let accepted = |model: ModelKind| Checker::new(model.instance()).check(&exec).is_valid();
        let chain: &[(ModelKind, ModelKind)] = &[
            (ModelKind::Sc, ModelKind::Tso),
            (ModelKind::Tso, ModelKind::Armish),
            (ModelKind::Tso, ModelKind::Powerish),
            (ModelKind::Armish, ModelKind::Rmo),
            (ModelKind::Powerish, ModelKind::Rmo),
        ];
        for &(stronger, weaker) in chain {
            if accepted(stronger) {
                prop_assert!(
                    accepted(weaker),
                    "seed {seed}: accepted by {stronger} but rejected by {weaker}"
                );
            }
        }
    }

    /// Enumerated-corpus verdicts are monotone along the strength chain: a
    /// cycle forbidden under a weak model is forbidden under every stronger
    /// one — and the closed-form oracle agrees with the axiomatic checker on
    /// the cycle's canonical weak-outcome execution, for every model.
    /// (Proptest samples the default-bound corpus; the full sweep runs in
    /// `mcversi-bench`'s enumerated matrix.)
    #[test]
    fn enumerated_verdicts_are_monotone_and_checker_backed(pick in 0usize..10_000) {
        use mcversi::testgen::enumerate::{enumerate, EnumerationBounds};
        let corpus = enumerate(&EnumerationBounds::default());
        let test = &corpus[pick % corpus.len()];
        let [sc, tso, armish, powerish, rmo] = test.forbidden;
        let chain = [(sc, tso), (tso, armish), (tso, powerish), (armish, rmo), (powerish, rmo)];
        for (stronger, weaker) in chain {
            prop_assert!(
                stronger || !weaker,
                "{}: forbidden under the weaker model only", test.name
            );
        }
        prop_assert!(sc, "{}: SC forbids every critical cycle", test.name);
        let exec = test.cycle.canonical_execution();
        prop_assert!(exec.validate().is_ok(), "{}: {:?}", test.name, exec.validate());
        for (i, model) in ModelKind::ALL.into_iter().enumerate() {
            let checker = Checker::new(model.instance()).check(&exec).is_violation();
            prop_assert_eq!(
                test.forbidden[i], checker,
                "{} under {}: oracle vs checker", &test.name, model
            );
        }
    }

    #[test]
    fn closure_is_idempotent_and_topo_sort_matches_acyclicity(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
    ) {
        let rel = Relation::from_pairs(edges.iter().map(|&(a, b)| (EventId(a), EventId(b))));
        let closed = rel.transitive_closure();
        prop_assert_eq!(closed.transitive_closure(), closed.clone());
        prop_assert_eq!(rel.is_acyclic(), rel.topological_sort().is_some());
        // Closure preserves acyclicity.
        prop_assert_eq!(rel.is_acyclic(), closed.is_acyclic());
        // Any reported cycle really is a cycle.
        if let Some(cycle) = rel.find_cycle() {
            prop_assert!(!cycle.is_empty());
            for w in cycle.windows(2) {
                prop_assert!(rel.contains(w[0], w[1]));
            }
            prop_assert!(rel.contains(*cycle.last().unwrap(), cycle[0]));
        }
    }
}

proptest! {
    // The simulator properties run fewer cases: each case simulates a full
    // test-run.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn correct_design_satisfies_tso_for_arbitrary_tests(seed in 0u64..500) {
        let config = McVerSiConfig::small().with_iterations(2).with_test_size(40).with_seed(seed);
        let params = config.testgen.clone().with_test_size(40);
        let mut runner = TestRunner::new(config, BugConfig::none());
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(seed));
        let result = runner.run_test(&test);
        prop_assert!(!result.verdict.is_bug(), "verdict: {:?}", result.verdict);
        prop_assert!(result.analysis.ndt >= 0.0);
    }

    /// Soundness of the relaxed pipeline: for arbitrary generated tests
    /// (relaxed operation mix: dependency-carrying ops and weak fence
    /// flavours), the correct relaxed-core design never violates the
    /// dependency-ordered model it is checked against.
    #[test]
    fn relaxed_core_correct_design_satisfies_its_own_models(seed in 0u64..500) {
        use mcversi::sim::CoreStrength;
        let model = [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo][(seed % 3) as usize];
        let mut config = McVerSiConfig::small()
            .with_iterations(2)
            .with_test_size(40)
            .with_seed(seed);
        config.model = model;
        config.system.core_strength = CoreStrength::Relaxed;
        config.testgen.bias = mcversi::testgen::OperationBias::relaxed_default();
        let params = config.testgen.clone();
        let mut runner = TestRunner::new(config, BugConfig::none());
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(seed));
        let result = runner.run_test(&test);
        prop_assert!(
            !result.verdict.is_bug(),
            "relaxed core violated {model}: {:?}",
            result.verdict
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed(seed in 0u64..500) {
        let run = |sim_seed: u64| {
            let config = McVerSiConfig::small()
                .with_iterations(2)
                .with_test_size(32)
                .with_seed(sim_seed);
            let params = config.testgen.clone().with_test_size(32);
            let mut runner = TestRunner::new(config, BugConfig::none());
            let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(7));
            let result = runner.run_test(&test);
            (result.cycles, result.analysis.ndt.to_bits(), result.covered.len())
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b, "same seed must reproduce the same run");
    }
}

/// Deterministic wide sweep backing the sampled monotonicity property: 500
/// random executions, every chain pair checked.
#[test]
fn model_strength_monotone_wide_sweep() {
    let chain: &[(ModelKind, ModelKind)] = &[
        (ModelKind::Sc, ModelKind::Tso),
        (ModelKind::Tso, ModelKind::Armish),
        (ModelKind::Tso, ModelKind::Powerish),
        (ModelKind::Armish, ModelKind::Rmo),
        (ModelKind::Powerish, ModelKind::Rmo),
    ];
    let mut accepted_counts = vec![0usize; ModelKind::ALL.len()];
    for seed in 10_000..10_500u64 {
        let exec = random_execution(seed);
        assert!(exec.validate().is_ok(), "seed {seed} malformed");
        let accepted = |model: ModelKind| Checker::new(model.instance()).check(&exec).is_valid();
        for (i, model) in ModelKind::ALL.into_iter().enumerate() {
            if accepted(model) {
                accepted_counts[i] += 1;
            }
        }
        for &(stronger, weaker) in chain {
            if accepted(stronger) {
                assert!(
                    accepted(weaker),
                    "seed {seed}: accepted by {stronger} but rejected by {weaker}"
                );
            }
        }
    }
    // The sweep must actually discriminate: weaker models accept strictly
    // more of the random executions than SC does, and some executions are
    // rejected even by RMO (coherence violations), otherwise the property
    // would be vacuous.
    assert!(
        accepted_counts[4] > accepted_counts[0],
        "RMO should accept more executions than SC: {accepted_counts:?}"
    );
    assert!(
        accepted_counts[4] < 500,
        "some executions must violate even RMO: {accepted_counts:?}"
    );
}

/// Deterministic sweep backing the relaxed-core properties: on generated
/// tests with the relaxed operation mix, every complete execution of the
/// correct relaxed core is accepted by all three dependency-ordered models,
/// while at least one sampled run exhibits a reordering that SC and TSO
/// forbid — the core is genuinely weaker than the strong models, not merely
/// differently configured.
#[test]
fn relaxed_core_weaker_than_tso_but_sound_for_weak_models() {
    use mcversi::core::lowering::lower;
    use mcversi::mcm::checker::Checker;
    use mcversi::sim::{
        BugConfig as SimBugConfig, CoreStrength, ProtocolKind, System, SystemConfig,
    };
    use mcversi::testgen::OperationBias;

    let mut cfg = SystemConfig::small(ProtocolKind::Mesi);
    cfg.core_strength = CoreStrength::Relaxed;
    let mut sys = System::new(cfg, SimBugConfig::none(), 17);
    let mut params = TestGenParams::small().with_threads(4).with_test_size(48);
    params.bias = OperationBias::relaxed_default();
    let gen = RandomTestGenerator::new(params);
    let mut tso_broken = 0usize;
    let mut sc_broken = 0usize;
    let mut complete = 0usize;
    for seed in 0..40u64 {
        let program = lower(&gen.generate(&mut StdRng::seed_from_u64(seed)));
        let outcome = sys.run_iteration(&program);
        assert!(
            outcome.protocol_errors.is_empty(),
            "seed {seed}: {:?}",
            outcome.protocol_errors
        );
        if !outcome.complete {
            continue;
        }
        complete += 1;
        for model in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
            assert!(
                Checker::new(model.instance())
                    .check(&outcome.execution)
                    .is_valid(),
                "seed {seed}: correct relaxed core violated {model}"
            );
        }
        if Checker::new(ModelKind::Tso.instance())
            .check(&outcome.execution)
            .is_violation()
        {
            tso_broken += 1;
        }
        if Checker::new(ModelKind::Sc.instance())
            .check(&outcome.execution)
            .is_violation()
        {
            sc_broken += 1;
        }
    }
    assert!(complete > 20, "too few complete runs: {complete}");
    assert!(
        tso_broken > 0,
        "no sampled run exhibited a TSO-forbidden reordering"
    );
    assert!(
        sc_broken >= tso_broken,
        "every TSO violation is an SC violation (monotonicity)"
    );
}

/// Builds a pseudo-random but fully-populated [`ScenarioSpec`] from a seed.
fn arbitrary_spec(seed: u64) -> mcversi::core::ScenarioSpec {
    use mcversi::core::{GeneratorKind, ScenarioSpec};
    use mcversi::sim::{Bug, CoreStrength, ProtocolKind};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pick = |n: usize| rng.gen_range(0..n);
    ScenarioSpec {
        generator: GeneratorKind::ALL[pick(4)],
        bug: match pick(4) {
            0 => None,
            i => Some(Bug::ALL_EXTENDED[(i * 5) % Bug::ALL_EXTENDED.len()]),
        },
        model: ModelKind::ALL[pick(5)],
        core_strength: CoreStrength::ALL[pick(2)],
        cores: 1 + pick(8),
        protocol: [ProtocolKind::Mesi, ProtocolKind::TsoCc][pick(2)],
        test_memory_bytes: [256, 1024, 8192][pick(3)],
        test_size: 8 + pick(1000),
        iterations: 1 + pick(10),
        samples: 1 + pick(10),
        max_test_runs: 1 + pick(2000),
        wall_secs: 1 + pick(100_000) as u64,
        shared_wall_secs: if pick(2) == 0 {
            None
        } else {
            Some(pick(1000) as u64)
        },
        parallelism: pick(16),
        base_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        full: pick(2) == 1,
        litmus: match pick(3) {
            0 => None,
            1 => Some(mcversi::testgen::LitmusCorpus::Handpicked),
            _ => Some(mcversi::testgen::LitmusCorpus::Enumerated {
                max_threads: 2 + pick(3),
                max_edges: 4 + pick(4),
            }),
        },
        prune: match pick(4) {
            0 => None,
            1 => Some(mcversi::core::StaticPrune::Off),
            2 => Some(mcversi::core::StaticPrune::Skip),
            _ => Some(mcversi::core::StaticPrune::Penalize),
        },
        metrics: match pick(3) {
            0 => None,
            1 => Some(0),
            _ => Some(1 + pick(100)),
        },
        checking: match pick(4) {
            0 => None,
            1 => Some(mcversi::core::CheckingMode::PerExec),
            2 => Some(mcversi::core::CheckingMode::Collective),
            _ => Some(mcversi::core::CheckingMode::Vc),
        },
        label: if pick(2) == 0 {
            None
        } else {
            Some(format!("label \"{}\"\n[{seed}]", pick(100)))
        },
    }
}

proptest! {
    /// The declarative spec round-trips through JSON exactly: spec → JSON →
    /// spec is the identity for arbitrary axis combinations, budgets, seeds
    /// and labels (including labels that need JSON string escaping).
    #[test]
    fn scenario_spec_round_trips_through_json(seed in 0u64..300) {
        use mcversi::core::ScenarioSpec;
        let spec = arbitrary_spec(seed);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{json}"));
        prop_assert_eq!(back, spec);
    }
}

/// The grid-driven declarative path reproduces the *exact* campaign results
/// of a configuration assembled by hand from the config structs — for 20
/// seeds across a strong-core TSO cell and a relaxed-core ARMish cell.
/// (Everything except wall-clock time must match bit-for-bit; this is the
/// compatibility contract of the `ScenarioSpec` redesign, kept after the
/// deprecated setter shims were deleted.)
#[test]
fn grid_cells_reproduce_field_built_campaigns() {
    use mcversi::core::{
        run_campaign, CampaignConfig, CampaignResult, GeneratorKind, ScenarioGrid, ScenarioSpec,
    };
    use mcversi::mcm::ModelKind;
    use mcversi::sim::{Bug, CoreStrength, ProtocolKind, SystemConfig};
    use std::time::Duration;

    fn fingerprint(r: &CampaignResult) -> (u64, bool, Option<String>, usize, Option<usize>, u64) {
        (
            r.seed,
            r.found,
            r.detail.clone(),
            r.test_runs,
            r.found_at_run,
            r.simulated_cycles,
        )
    }

    /// The imperative construction path: config structs assembled field by
    /// field (plus the `retarget` bias policy), exactly what the deleted
    /// `with_model`/`with_core_strength` shims used to do.
    fn field_built(
        generator: GeneratorKind,
        bug: Bug,
        memory: u64,
        model: ModelKind,
        core: CoreStrength,
    ) -> CampaignConfig {
        let mut system = SystemConfig::small(ProtocolKind::Mesi);
        system.num_cores = 4;
        let mut testgen = TestGenParams::small();
        testgen.test_memory_bytes = memory;
        testgen.population_size = 24;
        let testgen = testgen.with_threads(4).with_test_size(24);
        let mut mcversi = McVerSiConfig::small();
        mcversi.system = system;
        mcversi.testgen = testgen;
        mcversi.testgen.iterations = 2;
        let mut mcversi = mcversi.retarget(model);
        mcversi.system.core_strength = core;
        CampaignConfig::new(generator, Some(bug), mcversi, 6, Duration::from_secs(60))
    }

    let mut base = ScenarioSpec::small();
    base.cores = 4;
    base.test_size = 24;
    base.iterations = 2;
    base.max_test_runs = 6;
    base.wall_secs = 60;

    let cells = [
        (
            GeneratorKind::McVerSiRand,
            Bug::LqNoTso,
            1024u64,
            ModelKind::Tso,
            CoreStrength::Strong,
        ),
        (
            GeneratorKind::DiyLitmus,
            Bug::SqNoDataDep,
            8 * 1024,
            ModelKind::Armish,
            CoreStrength::Relaxed,
        ),
    ];

    for (generator, bug, memory, model, core) in cells {
        let old_config = field_built(generator, bug, memory, model, core);
        let grid = ScenarioGrid::new(
            base.clone()
                .generator(generator)
                .bug(Some(bug))
                .test_memory(memory),
        )
        .models([model])
        .core_strengths([core]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 1);
        let new_config = cells[0].campaign();

        assert_eq!(
            old_config.effective_mcversi(),
            new_config.effective_mcversi(),
            "configs must agree for {generator}/{bug}"
        );
        for seed in 0..10u64 {
            let old_result = run_campaign(&old_config, seed);
            let new_result = run_campaign(&new_config, seed);
            assert_eq!(
                fingerprint(&old_result),
                fingerprint(&new_result),
                "seed {seed}, {generator}/{bug}"
            );
        }
    }
}

/// The collective-checking differential sweep: over 40 seeds rotating
/// through every model, both core strengths, bug on/off and all four test
/// sources, a campaign run with signature-deduplicated collective checking
/// reaches exactly the verdict of per-execution checking — same `found`,
/// same detail, same discovering run — and, when nothing was found (so both
/// modes evaluated every iteration of every run), the full result
/// fingerprint matches bit-for-bit.
#[test]
fn collective_checking_is_verdict_equivalent_across_a_40_seed_sweep() {
    use mcversi::core::{
        run_campaign, CampaignConfig, CampaignResult, CheckingMode, GeneratorKind,
    };
    use mcversi::sim::{Bug, CoreStrength};
    use std::time::Duration;

    fn fingerprint(
        r: &CampaignResult,
    ) -> (
        u64,
        bool,
        Option<String>,
        usize,
        Option<usize>,
        u64,
        u64,
        u64,
    ) {
        (
            r.seed,
            r.found,
            r.detail.clone(),
            r.test_runs,
            r.found_at_run,
            r.simulated_cycles,
            r.max_total_coverage.to_bits(),
            r.final_mean_ndt.to_bits(),
        )
    }

    let mut executions_seen = 0u64;
    for seed in 0..40u64 {
        let model = ModelKind::ALL[(seed % 5) as usize];
        let core = [CoreStrength::Strong, CoreStrength::Relaxed][(seed % 2) as usize];
        let bug = if (seed / 2) % 2 == 0 {
            None
        } else {
            Some(Bug::LqNoTso)
        };
        let generator = GeneratorKind::ALL[(seed % 4) as usize];
        let mut mcversi = McVerSiConfig::small()
            .with_test_size(24)
            .with_iterations(2)
            .retarget(model);
        mcversi.system.core_strength = core;
        let base = CampaignConfig::new(generator, bug, mcversi, 3, Duration::from_secs(60));
        let per = run_campaign(&base, seed);
        let coll = run_campaign(&base.clone().with_checking(CheckingMode::Collective), seed);
        assert_eq!(
            (per.found, &per.detail, per.found_at_run),
            (coll.found, &coll.detail, coll.found_at_run),
            "seed {seed} ({generator}/{model}/{core:?}/{bug:?}): verdicts diverge"
        );
        if !per.found {
            assert_eq!(
                fingerprint(&per),
                fingerprint(&coll),
                "seed {seed} ({generator}/{model}/{core:?}/{bug:?})"
            );
        }
        let dedup = coll.dedup.expect("collective mode reports dedup stats");
        executions_seen += dedup.executions;
    }
    assert!(
        executions_seen > 0,
        "the sweep must actually exercise the collective path"
    );
}

#[test]
fn different_seeds_perturb_executions() {
    // Complements the determinism property: across many seeds the cycle counts
    // must not all be identical (otherwise there would be no non-determinism
    // for NDT to measure).
    let mut cycle_counts = BTreeSet::new();
    for seed in 0..6u64 {
        let config = McVerSiConfig::small()
            .with_iterations(1)
            .with_test_size(32)
            .with_seed(seed);
        let params = config.testgen.clone().with_test_size(32);
        let mut runner = TestRunner::new(config, BugConfig::none());
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(7));
        let result = runner.run_test(&test);
        cycle_counts.insert(result.cycles);
    }
    assert!(
        cycle_counts.len() > 1,
        "different seeds should give different timings"
    );
}

/// The distributed-fabric differential sweep: a 20-seed grid of small cells
/// (rotating models, cores, generators, bugs, and checking modes) run
/// through the multi-process coordinator — with 2 workers and again with 4,
/// work stealing on — reaches exactly the verdicts of the in-process path:
/// same `found`, same `detail`, same `found_at_run`, same dedup stats, for
/// every sample of every cell.
#[test]
fn fabric_coordinator_is_verdict_equivalent_across_a_20_seed_sweep() {
    use mcversi::core::sink::NullSink;
    use mcversi::core::{CampaignResult, CheckingMode, GeneratorKind, ScenarioSpec};
    use mcversi::fabric::{run_grid, FabricOptions};
    use mcversi::sim::{Bug, CoreStrength};

    /// Locates (building on demand) the `mcversi-work` binary.  The root
    /// test harness only builds this package's targets, so the fabric worker
    /// may not exist yet — one `cargo build` fixes that, cheaply when the
    /// workspace is already compiled.
    fn worker_binary() -> std::path::PathBuf {
        use std::sync::OnceLock;
        static WORKER: OnceLock<std::path::PathBuf> = OnceLock::new();
        WORKER
            .get_or_init(|| {
                let exe = std::env::current_exe().expect("test executable path");
                // `target/<profile>/deps/<test>` → `target/<profile>/`.
                let profile_dir = exe
                    .parent()
                    .and_then(std::path::Path::parent)
                    .expect("test executable in target/<profile>/deps")
                    .to_path_buf();
                let worker =
                    profile_dir.join(format!("mcversi-work{}", std::env::consts::EXE_SUFFIX));
                if !worker.is_file() {
                    let cargo = option_env!("CARGO").unwrap_or("cargo");
                    let mut build = std::process::Command::new(cargo);
                    build.args(["build", "-p", "mcversi-fabric", "--bin", "mcversi-work"]);
                    if profile_dir.file_name().is_some_and(|n| n == "release") {
                        build.arg("--release");
                    }
                    let status = build.status().expect("spawn cargo build for mcversi-work");
                    assert!(status.success(), "cargo build for mcversi-work failed");
                }
                assert!(
                    worker.is_file(),
                    "worker binary not found at {}",
                    worker.display()
                );
                worker
            })
            .clone()
    }

    type Verdict = (
        u64,
        bool,
        Option<String>,
        Option<usize>,
        Option<mcversi::core::DedupStats>,
    );

    fn verdicts(results: &[CampaignResult]) -> Vec<Verdict> {
        results
            .iter()
            .map(|r| (r.seed, r.found, r.detail.clone(), r.found_at_run, r.dedup))
            .collect()
    }

    let cells: Vec<ScenarioSpec> = (0..20u64)
        .map(|i| {
            let mut cell = ScenarioSpec::small();
            cell.base_seed = 1 + i * 1000;
            cell.samples = 2;
            cell.test_size = 16;
            cell.iterations = 1;
            cell.max_test_runs = 2;
            cell.model = ModelKind::ALL[(i % 5) as usize];
            cell.core_strength = [CoreStrength::Strong, CoreStrength::Relaxed][(i % 2) as usize];
            cell.generator = GeneratorKind::ALL[(i % 4) as usize];
            cell.bug = if (i / 2) % 2 == 0 {
                None
            } else {
                Some(Bug::LqNoTso)
            };
            if i % 3 == 0 {
                cell.checking = Some(CheckingMode::Collective);
            }
            cell
        })
        .collect();

    let baseline: Vec<Vec<CampaignResult>> =
        cells.iter().map(|cell| cell.run(&mut NullSink)).collect();
    assert!(
        baseline
            .iter()
            .flatten()
            .any(|r| r.dedup.is_some_and(|d| d.executions > 0)),
        "the sweep must exercise collective checking so dedup stats are compared"
    );

    for workers in [2usize, 4] {
        let mut options = FabricOptions::new(worker_binary());
        options.workers = workers;
        options.shards = 8; // more shards than workers: stealing has spares
        let report = run_grid(&cells, &options, &mut NullSink)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert_eq!(report.cells.len(), cells.len());
        for ((cell, fabric_results), in_process) in report.cells.iter().zip(&baseline) {
            assert_eq!(
                verdicts(fabric_results),
                verdicts(in_process),
                "{workers} workers, cell {}",
                cell.display_label()
            );
        }
    }
}
