//! Property-based integration tests (proptest) over the whole stack.
//!
//! These check the invariants the rest of the framework relies on:
//!
//! * lowering always produces programs with unique, non-zero write values;
//! * both crossover operators preserve test size and thread validity for
//!   arbitrary parents and fit-address sets;
//! * the simulator is deterministic per seed and the correct design never
//!   produces a TSO violation, for arbitrary generated tests;
//! * relation algebra: transitive closure is idempotent and topological sort
//!   exists exactly for acyclic relations.

use mcversi::core::lowering::lower;
use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::mcm::relation::Relation;
use mcversi::mcm::EventId;
use mcversi::sim::BugConfig;
use mcversi::testgen::ndt::NdtAnalysis;
use mcversi::testgen::{
    selective_crossover_mutate, single_point_crossover_mutate, RandomTestGenerator, TestGenParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn small_params(test_size: usize) -> TestGenParams {
    TestGenParams::small()
        .with_test_size(test_size)
        .with_threads(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lowering_always_produces_unique_nonzero_write_values(seed in 0u64..1000, size in 8usize..96) {
        let params = small_params(size);
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(seed));
        let program = lower(&test);
        prop_assert!(program.written_values_unique());
        prop_assert_eq!(program.total_ops(), size);
    }

    #[test]
    fn crossover_preserves_size_and_threads(
        seed in 0u64..1000,
        size in 8usize..64,
        fit_count in 0usize..6,
    ) {
        let params = small_params(size);
        let gen = RandomTestGenerator::new(params.clone());
        let t1 = gen.generate(&mut StdRng::seed_from_u64(seed));
        let t2 = gen.generate(&mut StdRng::seed_from_u64(seed + 1));
        let mut a1 = NdtAnalysis::empty();
        a1.ndt = 1.5;
        a1.fitaddrs = t1.addresses().into_iter().take(fit_count).collect();
        let mut a2 = NdtAnalysis::empty();
        a2.ndt = 2.5;
        a2.fitaddrs = t2.addresses().into_iter().take(fit_count).collect();
        let mut rng = StdRng::seed_from_u64(seed + 2);

        let child = selective_crossover_mutate(&t1, &t2, &a1, &a2, &params, &mut rng);
        prop_assert_eq!(child.len(), size);
        prop_assert_eq!(child.num_threads(), t1.num_threads());
        prop_assert!(child.genes().iter().all(|g| (g.pid as usize) < child.num_threads()));

        let child = single_point_crossover_mutate(&t1, &t2, &params, &mut rng);
        prop_assert_eq!(child.len(), size);
        prop_assert!(child.genes().iter().all(|g| (g.pid as usize) < child.num_threads()));
    }

    #[test]
    fn closure_is_idempotent_and_topo_sort_matches_acyclicity(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
    ) {
        let rel = Relation::from_pairs(edges.iter().map(|&(a, b)| (EventId(a), EventId(b))));
        let closed = rel.transitive_closure();
        prop_assert_eq!(closed.transitive_closure(), closed.clone());
        prop_assert_eq!(rel.is_acyclic(), rel.topological_sort().is_some());
        // Closure preserves acyclicity.
        prop_assert_eq!(rel.is_acyclic(), closed.is_acyclic());
        // Any reported cycle really is a cycle.
        if let Some(cycle) = rel.find_cycle() {
            prop_assert!(!cycle.is_empty());
            for w in cycle.windows(2) {
                prop_assert!(rel.contains(w[0], w[1]));
            }
            prop_assert!(rel.contains(*cycle.last().unwrap(), cycle[0]));
        }
    }
}

proptest! {
    // The simulator properties run fewer cases: each case simulates a full
    // test-run.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn correct_design_satisfies_tso_for_arbitrary_tests(seed in 0u64..500) {
        let config = McVerSiConfig::small().with_iterations(2).with_test_size(40).with_seed(seed);
        let params = config.testgen.clone().with_test_size(40);
        let mut runner = TestRunner::new(config, BugConfig::none());
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(seed));
        let result = runner.run_test(&test);
        prop_assert!(!result.verdict.is_bug(), "verdict: {:?}", result.verdict);
        prop_assert!(result.analysis.ndt >= 0.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed(seed in 0u64..500) {
        let run = |sim_seed: u64| {
            let config = McVerSiConfig::small()
                .with_iterations(2)
                .with_test_size(32)
                .with_seed(sim_seed);
            let params = config.testgen.clone().with_test_size(32);
            let mut runner = TestRunner::new(config, BugConfig::none());
            let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(7));
            let result = runner.run_test(&test);
            (result.cycles, result.analysis.ndt.to_bits(), result.covered.len())
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b, "same seed must reproduce the same run");
    }
}

#[test]
fn different_seeds_perturb_executions() {
    // Complements the determinism property: across many seeds the cycle counts
    // must not all be identical (otherwise there would be no non-determinism
    // for NDT to measure).
    let mut cycle_counts = BTreeSet::new();
    for seed in 0..6u64 {
        let config = McVerSiConfig::small()
            .with_iterations(1)
            .with_test_size(32)
            .with_seed(seed);
        let params = config.testgen.clone().with_test_size(32);
        let mut runner = TestRunner::new(config, BugConfig::none());
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(7));
        let result = runner.run_test(&test);
        cycle_counts.insert(result.cycles);
    }
    assert!(
        cycle_counts.len() > 1,
        "different seeds should give different timings"
    );
}
