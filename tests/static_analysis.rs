//! Integration tests of the static analysis crate against the rest of the
//! stack:
//!
//! * **Static/dynamic dependency differential** (proptest): the syntactic
//!   dependency graph [`Dataflow`](mcversi::analysis::Dataflow) computes from
//!   the IR alone must equal the graph the simulator's `ExecObserver` records
//!   while executing — for arbitrary generated tests under both the strong
//!   and the relaxed operation mix.  The static graph is a function of the
//!   program only, so one differential covers every `CoreStrength`: the
//!   observer allocates events and records dependencies before the core model
//!   is even chosen.
//! * **Corpus gate**: for every test of the enumerated litmus corpus, the
//!   static classifier run on the *lowered program* rediscovers the source
//!   critical cycle, reproduces the enumerator's per-model verdict row for
//!   it, and the prune predicate `forbids_any` never contradicts the
//!   enumerator — a test forbidden under a model is never statically inert
//!   for that model, so the opt-in pre-simulation prune cannot discard a
//!   litmus test that could expose the violation it encodes.

use mcversi::analysis::{classify, forbids_any, ClassifyBounds, Dataflow};
use mcversi::core::lowering::lower;
use mcversi::mcm::{Address, ModelKind};
use mcversi::sim::observer::ExecObserver;
use mcversi::testgen::enumerate::{enumerate, EnumerationBounds};
use mcversi::testgen::{OperationBias, RandomTestGenerator, TestGenParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Distinct cache lines, matching the lint binary's location pool.
const LOCATIONS: [Address; 4] = [
    Address(0x10_0000),
    Address(0x10_0040),
    Address(0x10_0080),
    Address(0x10_00c0),
];

fn params(test_size: usize, bias: OperationBias) -> TestGenParams {
    let mut params = TestGenParams::small()
        .with_test_size(test_size)
        .with_threads(4);
    params.bias = bias;
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The static dependency graph equals the observer's dynamic one for
    /// arbitrary generated tests, under both operation mixes.
    #[test]
    fn static_deps_equal_dynamic_deps(seed in 0u64..5000, size in 8usize..96) {
        let bias = if seed % 2 == 0 {
            OperationBias::paper_default()
        } else {
            OperationBias::relaxed_default()
        };
        let generator = RandomTestGenerator::new(params(size, bias));
        let test = generator.generate(&mut StdRng::seed_from_u64(seed));
        let program = lower(&test);
        let df = Dataflow::new(&program);
        let dynamic = ExecObserver::new(&program).finish();
        prop_assert_eq!(
            df.deps(),
            dynamic.deps(),
            "seed {}: static and dynamic dependency graphs diverge",
            seed
        );
        // Event allocation mirrors the observer too (initial writes are
        // created by `finish` with ids above the program events).
        let dynamic_events = dynamic.events().iter().filter(|e| !e.is_initial()).count();
        prop_assert_eq!(df.accesses().len() + df.fences().len(), dynamic_events);
    }

    /// Sampled corpus gate at the default enumeration bound (the toy-scale
    /// bound is swept exhaustively below): the classifier rediscovers the
    /// source cycle with the enumerator's verdict row.
    #[test]
    fn classifier_rediscovers_sampled_default_corpus_cycles(pick in 0usize..10_000) {
        let corpus = enumerate(&EnumerationBounds::default());
        let test = &corpus[pick % corpus.len()];
        let program = lower(&test.litmus(&LOCATIONS).test);
        let df = Dataflow::new(&program);
        let bounds = ClassifyBounds {
            max_edges: test.cycle.len(),
            ..ClassifyBounds::default()
        };
        let disc = classify(&df, &bounds);
        prop_assert!(!disc.truncated, "{}: classification truncated", test.name);
        prop_assert_eq!(
            disc.verdict_of(&test.cycle),
            Some(test.forbidden),
            "{}: source cycle missing or misjudged",
            &test.name
        );
    }
}

/// Exhaustive corpus gate at the toy-scale bound: every enumerated test's
/// static cycle set contains its source cycle with the right verdicts, and
/// the prune predicate keeps every test that is forbidden somewhere.
#[test]
fn every_toy_corpus_test_statically_contains_its_source_cycle() {
    let corpus = enumerate(&EnumerationBounds::new(2, 4));
    assert!(corpus.len() >= 50, "toy corpus too small: {}", corpus.len());
    let bounds = ClassifyBounds::default();
    for test in corpus.iter() {
        let program = lower(&test.litmus(&LOCATIONS).test);
        let df = Dataflow::new(&program);
        let disc = classify(&df, &bounds);
        assert!(!disc.truncated, "{}: classification truncated", test.name);
        assert_eq!(
            disc.verdict_of(&test.cycle),
            Some(test.forbidden),
            "{}: source cycle missing from the static cycle set or misjudged",
            test.name
        );
        for model in ModelKind::ALL {
            if test.forbidden_under(model) {
                assert!(
                    forbids_any(&df, model, &bounds),
                    "{}: forbidden under {model} but statically inert — \
                     the prune would discard a capable litmus test",
                    test.name
                );
            }
        }
    }
}
