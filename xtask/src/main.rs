//! Repo-level static checks, run by CI next to `fmt`/`clippy`
//! (`cargo run -p xtask`).
//!
//! Four source-hygiene rules the compiler cannot express, checked textually
//! over the *production* portion of every `crates/*/src/**.rs` file (each
//! file is truncated at its first `#[cfg(test)]` line, so test modules are
//! exempt):
//!
//! 1. **Environment reads are centralised**: `env::var` may appear only in
//!    `crates/core/src/scenario.rs`.  All `MCVERSI_*` parsing lives there so
//!    experiment binaries cannot grow divergent environment handling.
//! 2. **No `.unwrap()` / `.expect()` in the simulator hot paths**
//!    (`crates/sim/src/{core,lsq,cache}.rs`): a poisoned `Option` in the
//!    pipeline or cache must surface as an explicit `unreachable!` with a
//!    documented invariant, not as a generic panic.
//! 3. **Wall-clock reads go through the telemetry crate**: `Instant::now`
//!    may appear only inside `crates/telemetry/` (whose `Span`/`Stopwatch`
//!    keep the disabled path free of syscalls) and in the campaign deadline
//!    logic of `crates/core/src/campaign.rs`.  Scattered ad-hoc timing would
//!    bypass the metrics facade and its disabled-path cost guarantee.
//! 4. **Trace parsing lives in one place**: the `mcversi-trace` wire-format
//!    magic may appear only under `crates/conformance/`.  Everything else
//!    (including `mcversi-check`) must go through
//!    `mcversi_conformance::trace` rather than growing a second parser or
//!    hand-rolled emitter for the format.
//!
//! Exit status: `0` when clean, `1` with `file:line` diagnostics otherwise.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// The single file allowed to read the environment.
const ENV_ALLOWED: &str = "crates/core/src/scenario.rs";

/// Simulator hot paths in which `.unwrap()` / `.expect()` are banned.
const NO_PANIC_HELPERS: [&str; 3] = [
    "crates/sim/src/core.rs",
    "crates/sim/src/lsq.rs",
    "crates/sim/src/cache.rs",
];

/// The places allowed to read the wall clock directly: the telemetry crate
/// (prefix) and the campaign deadline logic (exact file).
const CLOCK_ALLOWED_PREFIX: &str = "crates/telemetry/";
const CLOCK_ALLOWED_FILE: &str = "crates/core/src/campaign.rs";

/// The only crate allowed to name the trace wire-format magic.
const TRACE_ALLOWED_PREFIX: &str = "crates/conformance/";

/// The `mcversi-trace` header magic, spelled so this file passes its own
/// rule.
const TRACE_MAGIC: &str = concat!("mcversi", "-trace");

fn main() -> std::process::ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    match collect_rust_files(&root.join("crates"), &mut files) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("xtask: cannot walk crates/: {e}");
            return std::process::ExitCode::from(1);
        }
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            violations.push(format!("{}: unreadable", path.display()));
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        check_file(&rel, &text, &mut violations);
    }

    if violations.is_empty() {
        println!("xtask: OK ({} files checked)", files.len());
        std::process::ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("xtask: {violation}");
        }
        eprintln!("xtask: {} violation(s)", violations.len());
        std::process::ExitCode::from(1)
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `<root>/xtask`.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Collects `.rs` files under `dir`, recursively.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Applies all four rules to one file's production lines.
fn check_file(rel: &str, text: &str, violations: &mut Vec<String>) {
    let no_panic = NO_PANIC_HELPERS.contains(&rel);
    let env_allowed = rel == ENV_ALLOWED;
    let clock_allowed = rel.starts_with(CLOCK_ALLOWED_PREFIX) || rel == CLOCK_ALLOWED_FILE;
    let trace_allowed = rel.starts_with(TRACE_ALLOWED_PREFIX);
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // test code below this point is exempt
        }
        if !env_allowed && line.contains("env::var") {
            violations.push(format!(
                "{rel}:{}: environment read outside {ENV_ALLOWED} \
                 (route it through ScenarioSpec::from_env)",
                idx + 1
            ));
        }
        if no_panic && (line.contains(".unwrap(") || line.contains(".expect(")) {
            violations.push(format!(
                "{rel}:{}: .unwrap()/.expect() in a simulator hot path \
                 (use let-else with unreachable! and a documented invariant)",
                idx + 1
            ));
        }
        if !clock_allowed && line.contains("Instant::now(") {
            violations.push(format!(
                "{rel}:{}: direct wall-clock read outside {CLOCK_ALLOWED_PREFIX} \
                 (use a telemetry Timer span or Stopwatch)",
                idx + 1
            ));
        }
        if !trace_allowed && line.contains(TRACE_MAGIC) {
            violations.push(format!(
                "{rel}:{}: trace wire-format magic outside {TRACE_ALLOWED_PREFIX} \
                 (parse and emit traces through mcversi_conformance::trace)",
                idx + 1
            ));
        }
    }
}
