//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`; the
//! build environment is offline).  Supports the shapes the workspace actually
//! uses: non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants).  Generic types are rejected with a clear error.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }` — field names.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `enum E { A, B(T), C { x: T } }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skips attributes (`#[...]` / doc comments) at the current position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Splits the tokens of a brace/paren group at top-level commas, treating
/// `<`/`>` as nesting (so `BTreeMap<K, V>` does not split).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Extracts the field name from one `vis name: Type` chunk of a named-fields
/// group (attributes already inside the chunk are skipped).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = skip_attrs(chunk, 0);
    // Skip visibility: `pub` optionally followed by `(crate)` etc.
    if let Some(TokenTree::Ident(id)) = chunk.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = chunk.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parses the names of a `{ a: T, b: U }` named-fields group.
fn named_field_names(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .iter()
        .filter_map(|chunk| field_name(chunk))
        .collect()
}

/// Parses the derive input down to `(type_name, shape)`.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    // Skip visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported; type `{name}`");
        }
    }
    // Skip a `where` clause if present (none expected for non-generic types).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let shape = if kind == "enum" {
                    Shape::Enum(parse_variants(&body))
                } else {
                    Shape::NamedStruct(named_field_names(&body))
                };
                return (name, shape);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
                let count =
                    split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                return (name, Shape::TupleStruct(count));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                return (name, Shape::UnitStruct);
            }
            _ => i += 1,
        }
    }
    panic!("serde_derive: could not find body of `{name}`");
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(body) {
        let i = skip_attrs(&chunk, 0);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => panic!("serde_derive: expected enum variant name, found {other:?}"),
        };
        let fields = match chunk.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantFields::Tuple(
                    split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>()).len(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantFields::Named(
                named_field_names(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            _ => VariantFields::Unit, // unit variant (a `= discr` is ignored)
        };
        variants.push(Variant { name, fields });
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(count) => {
            let entries: Vec<String> = (0..count)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            if count == 1 {
                entries.into_iter().next().unwrap()
            } else {
                format!("::serde::Value::Array(vec![{}])", entries.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantFields::Tuple(count) => {
                            let binders: Vec<String> =
                                (0..*count).map(|i| format!("__f{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let payload = if *count == 1 {
                                values[0].clone()
                            } else {
                                format!("::serde::Value::Array(vec![{}])", values.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binders}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),",
                                binders = binders.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {fields} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    // Mirrors the Serialize derive exactly: named structs/variants expect an
    // object, tuple shapes of one field are transparent, longer tuples expect
    // an array, and unit shapes expect null (structs) or the variant-name
    // string (enums).  Field types are resolved by inference: the generated
    // code calls `::serde::Deserialize::from_value` in a position typed by
    // the struct/variant literal it builds.
    let body = match shape {
        Shape::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 __other => Err(::serde::DeError::expected(\"null\", \"{name}\")),\n\
             }}"
        ),
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__entries, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __entries = __v\n\
                     .as_object()\n\
                     .ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(count) => {
            if count == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..count)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v\n\
                         .as_array()\n\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                     if __items.len() != {count} {{\n\
                         return Err(::serde::DeError::expected(\n\
                             \"array of length {count}\", \"{name}\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantFields::Tuple(count) => {
                        let build = if *count == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let items: Vec<String> = (0..*count)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{\n\
                                     let __items = __payload.as_array().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                     if __items.len() != {count} {{\n\
                                         return Err(::serde::DeError::expected(\n\
                                             \"array of length {count}\", \"{name}::{vn}\"));\n\
                                     }}\n\
                                     {name}::{vn}({})\n\
                                 }}",
                                items.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                    VariantFields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__field(__entries, \"{f}\", \"{name}::{vn}\")?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __entries = __payload.as_object().ok_or_else(|| \
                                     ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                 return Ok({name}::{vn} {{ {} }});\n\
                             }}\n",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__variant) = __v {{\n\
                     match __variant.as_str() {{\n\
                         {unit_arms}\n\
                         __other => return Err(::serde::DeError(format!(\n\
                             \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some([(__variant, __payload)]) = __v.as_object() {{\n\
                     match __variant.as_str() {{\n\
                         {payload_arms}\n\
                         __other => return Err(::serde::DeError(format!(\n\
                             \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"variant of\", \"{name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(clippy::question_mark, unused_variables)]\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}
