//! Minimal stand-in for `serde_json`: serialization only, via the vendored
//! `serde` crate's [`serde::Value`] tree.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};

/// Serialization error (the vendored serializer is infallible in practice,
/// but the signature mirrors `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep integral floats recognizably floating-point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        out.push(' ');
                    }
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        out.push(' ');
                    }
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                out.push(' ');
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_out() {
        let v = vec![("a".to_string(), 1u32), ("b".to_string(), 2u32)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a", 1], ["b", 2]]"#);
        let pretty = to_string_pretty(&Some(3.5f64)).unwrap();
        assert_eq!(pretty, "3.5");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\n\"quoted\"".to_string();
        assert_eq!(to_string(&s).unwrap(), r#""line\n\"quoted\"""#);
    }
}
