//! Minimal stand-in for `serde_json`: serialization *and* parsing, via the
//! vendored `serde` crate's [`serde::Value`] tree.  [`to_string`] /
//! [`to_string_pretty`] render a [`Value`] tree as JSON; [`from_str`] parses
//! JSON text back into a tree and reconstructs any [`serde::Deserialize`]
//! type from it, so round trips work end to end.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization error (the vendored serializer is infallible in practice,
/// but the signature mirrors `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Renders `value` into a [`Value`] tree (the `serde_json::to_value` analogue;
/// infallible with the vendored serializer).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text and reconstructs a `T` from it.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    from_value(&value_from_str(input)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Standard JSON: objects, arrays, strings (with `\uXXXX` escapes), numbers
/// (integers parse to `Int`/`UInt`, everything else to `Float`), booleans and
/// `null`.  Trailing non-whitespace input is an error.
pub fn value_from_str(input: &str) -> Result<Value> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<()> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {pos}",
            char::from(byte),
            pos = *pos
        )))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = input_slice(bytes, *pos + 1, 4)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("invalid \\u escape at byte {}", *pos)))?;
                        // Surrogate pairs are not produced by the serializer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (input is a &str, so the
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn input_slice(bytes: &[u8], start: usize, len: usize) -> Result<&str> {
    bytes
        .get(start..start + len)
        .and_then(|b| std::str::from_utf8(b).ok())
        .ok_or_else(|| Error(format!("unexpected end of input at byte {start}")))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8");
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep integral floats recognizably floating-point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        out.push(' ');
                    }
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        out.push(' ');
                    }
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                out.push(' ');
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_out() {
        let v = vec![("a".to_string(), 1u32), ("b".to_string(), 2u32)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a", 1], ["b", 2]]"#);
        let pretty = to_string_pretty(&Some(3.5f64)).unwrap();
        assert_eq!(pretty, "3.5");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\n\"quoted\"".to_string();
        assert_eq!(to_string(&s).unwrap(), r#""line\n\"quoted\"""#);
    }

    #[test]
    fn parser_round_trips_scalars_and_containers() {
        for json in [
            "null",
            "true",
            "42",
            "-17",
            "3.5",
            "18446744073709551615",
            r#""héllo\n""#,
            "[]",
            "{}",
            r#"[1, 2, 3]"#,
            r#"{"a": 1, "b": [true, null]}"#,
        ] {
            let v = value_from_str(json).unwrap_or_else(|e| panic!("{json}: {e}"));
            let rendered = to_string(&v).unwrap();
            assert_eq!(
                value_from_str(&rendered).unwrap(),
                v,
                "round trip of {json}"
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for json in ["", "nul", "[1,", r#"{"a" 1}"#, "1 2", "-", r#""open"#] {
            assert!(value_from_str(json).is_err(), "{json} should fail");
        }
    }

    #[test]
    fn typed_from_str_reconstructs_values() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let v: std::collections::BTreeMap<String, f64> = from_str(r#"{"x": 1.5}"#).unwrap();
        assert_eq!(v["x"], 1.5);
        let v: Option<bool> = from_str("null").unwrap();
        assert_eq!(v, None);
        let v: std::time::Duration = from_str(r#"{"secs": 3, "nanos": 500}"#).unwrap();
        assert_eq!(v, std::time::Duration::new(3, 500));
    }
}
