//! Minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors the small
//! subset of the `rand 0.8` API the framework uses: [`rngs::StdRng`]
//! (implemented as xoshiro256++ seeded by SplitMix64), [`SeedableRng`],
//! and the [`Rng`] extension trait with `gen_range`, `gen_bool`, `gen`,
//! and `fill`.  The streams do not match crates.io `rand` bit-for-bit —
//! only statistical quality and per-seed determinism matter here.

#![forbid(unsafe_code)]

/// Core random number generation: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(word.iter()) {
                *dst = *src;
            }
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly (`Range` / `RangeInclusive`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.  Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` without modulo bias (Lemire's method, with the
/// widening product emulated in 128-bit arithmetic).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, width as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Types that can be generated via [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Generates one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        <f64 as Standard>::generate(rng) as f32
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Generates a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(word.iter()) {
                *dst = *src;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (not bit-compatible with
    /// crates.io `rand::rngs::StdRng`, but deterministic per seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; displace it.
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
