//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment is offline, so this crate replaces crates.io `serde`
//! with the smallest API the workspace needs: a self-describing [`Value`]
//! tree, a [`Serialize`] trait that renders into it (with
//! `#[derive(Serialize)]` provided by the vendored `serde_derive`), and a
//! marker [`Deserialize`] trait.  `serde_json::to_string_pretty` renders the
//! [`Value`] tree as real JSON.

#![forbid(unsafe_code)]

// Let the `::serde` paths emitted by the derive macros resolve inside this
// crate's own tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker trait: the type was derived as deserializable.  The vendored stack
/// has no deserializer; nothing in the workspace reads serialized artifacts
/// back.
pub trait Deserialize {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must render as strings (the JSON restriction).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: Option<String>,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Dot,
        Line(u32, u32),
        Poly { sides: u32 },
    }

    #[test]
    fn derive_named_struct() {
        let v = Point { x: 3, y: None }.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("x".to_string(), Value::UInt(3)),
                ("y".to_string(), Value::Null),
            ])
        );
    }

    #[test]
    fn derive_enum_variants() {
        assert_eq!(Shape::Dot.to_value(), Value::Str("Dot".to_string()));
        assert_eq!(
            Shape::Line(1, 2).to_value(),
            Value::Object(vec![(
                "Line".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
        assert_eq!(
            Shape::Poly { sides: 5 }.to_value(),
            Value::Object(vec![(
                "Poly".to_string(),
                Value::Object(vec![("sides".to_string(), Value::UInt(5))])
            )])
        );
    }
}
