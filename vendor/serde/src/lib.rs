//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment is offline, so this crate replaces crates.io `serde`
//! with the smallest API the workspace needs: a self-describing [`Value`]
//! tree, a [`Serialize`] trait that renders into it, and a [`Deserialize`]
//! trait that reconstructs a value from the tree (both derivable through the
//! vendored `serde_derive`).  `serde_json` renders the [`Value`] tree as real
//! JSON and parses JSON text back into it, so serialize → deserialize round
//! trips work end to end (campaign specs, event streams, artifacts).

#![forbid(unsafe_code)]

// Let the `::serde` paths emitted by the derive macros resolve inside this
// crate's own tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization error: what was expected, and a short rendering of what
/// was found (or which field was missing).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// A type-mismatch error.
    pub fn expected(what: &str, while_in: &str) -> Self {
        DeError(format!("expected {what} while deserializing {while_in}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can reconstruct themselves from a [`Value`] produced by
/// [`Serialize::to_value`] (or parsed from JSON by the vendored
/// `serde_json::from_str`).
pub trait Deserialize: Sized {
    /// Reconstructs a value from the [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must render as strings (the JSON restriction).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

impl Value {
    /// The entries of an object value, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items of an array value, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object value (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short type-name rendering for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserializes one field of a struct/variant object (used by the derived
/// impls).  A missing field is deserialized from [`Value::Null`] so `Option`
/// fields default to `None` while any other type reports the absence.
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError(format!("in field `{name}` of `{ty}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{name}` of `{ty}`"))),
    }
}

/// Reconstructs a map key from its string rendering (map keys are flattened
/// to strings on serialization, the JSON restriction): first as a plain
/// string, then re-interpreted as the scalar the string spells.
pub fn from_key<T: Deserialize>(key: &str) -> Result<T, DeError> {
    if let Ok(v) = T::from_value(&Value::Str(key.to_string())) {
        return Ok(v);
    }
    let reinterpreted = if let Ok(u) = key.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = key.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(b) = key.parse::<bool>() {
        Value::Bool(b)
    } else if let Ok(f) = key.parse::<f64>() {
        Value::Float(f)
    } else {
        Value::Str(key.to_string())
    };
    T::from_value(&reinterpreted).map_err(|e| DeError(format!("in map key `{key}`: {e}")))
}

fn int_from_value(v: &Value, ty: &str) -> Result<i128, DeError> {
    match v {
        Value::Int(n) => Ok(i128::from(*n)),
        Value::UInt(n) => Ok(i128::from(*n)),
        Value::Float(x) if x.fract() == 0.0 && x.abs() < 9e18 => Ok(*x as i128),
        other => Err(DeError::expected("integer", ty).context(other)),
    }
}

impl DeError {
    fn context(mut self, found: &Value) -> Self {
        self.0.push_str(&format!(" (found {})", found.kind_name()));
        self
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = int_from_value(v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // Non-finite floats serialize as `null` (the JSON restriction).
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("float", "f64").context(other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool").context(other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String").context(other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

fn seq_from_value<T: Deserialize>(v: &Value, ty: &str) -> Result<Vec<T>, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::expected("array", ty).context(v))?
        .iter()
        .map(T::from_value)
        .collect()
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from_value(v, "Vec")
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = seq_from_value(v, "array")?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from_value(v, "BTreeSet").map(|items: Vec<T>| items.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from_value(v, "HashSet").map(|items: Vec<T>| items.into_iter().collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from_value(v, "VecDeque").map(|items: Vec<T>| items.into_iter().collect())
    }
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
    ty: &str,
) -> Result<Vec<(K, V)>, DeError> {
    v.as_object()
        .ok_or_else(|| DeError::expected("object", ty).context(v))?
        .iter()
        .map(|(k, item)| Ok((from_key::<K>(k)?, V::from_value(item)?)))
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries_from_value(v, "BTreeMap").map(|e: Vec<(K, V)>| e.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries_from_value(v, "HashMap").map(|e: Vec<(K, V)>| e.into_iter().collect())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = __field(
            v.as_object()
                .ok_or_else(|| DeError::expected("object", "Duration").context(v))?,
            "secs",
            "Duration",
        )?;
        let nanos: u32 = __field(v.as_object().unwrap(), "nanos", "Duration")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", "()").context(other)),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple").context(v))?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
    (5: 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// One-element tuples serialize as a bare array of one value.
impl<A: Deserialize> Deserialize for (A,) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "tuple").context(v))?;
        match items {
            [a] => Ok((A::from_value(a)?,)),
            _ => Err(DeError(format!(
                "expected tuple of length 1, found {}",
                items.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: Option<String>,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Dot,
        Line(u32, u32),
        Poly { sides: u32 },
    }

    #[test]
    fn derive_named_struct() {
        let v = Point { x: 3, y: None }.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("x".to_string(), Value::UInt(3)),
                ("y".to_string(), Value::Null),
            ])
        );
    }

    #[test]
    fn derive_enum_variants() {
        assert_eq!(Shape::Dot.to_value(), Value::Str("Dot".to_string()));
        assert_eq!(
            Shape::Line(1, 2).to_value(),
            Value::Object(vec![(
                "Line".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
        assert_eq!(
            Shape::Poly { sides: 5 }.to_value(),
            Value::Object(vec![(
                "Poly".to_string(),
                Value::Object(vec![("sides".to_string(), Value::UInt(5))])
            )])
        );
    }
}
