//! Minimal, dependency-free stand-in for `criterion`.
//!
//! The build environment is offline, so this crate provides the subset of the
//! Criterion API the benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros).  Instead of Criterion's
//! statistical analysis it runs a short warm-up followed by a bounded
//! measurement loop and prints the mean wall-clock time per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; the stand-in has no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes its measurement loop by
    /// time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the target measurement time per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.measurement_time, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.measurement_time, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`] (so `&str` works where ids are expected).
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        self.iterations += 1;
        self.elapsed += first;
        // Bound the loop so one call of `iter` stays around a millisecond
        // even for slow bodies; `run_one` decides how often to call us.
        let budget = Duration::from_millis(1);
        let start = Instant::now();
        while start.elapsed() < budget {
            black_box(f());
            self.iterations += 1;
        }
        self.elapsed += start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, measurement_time: Duration, f: &mut F) {
    // Warm-up round (discarded).
    let mut warmup = Bencher::default();
    f(&mut warmup);
    // Measurement rounds.
    let mut bencher = Bencher::default();
    let start = Instant::now();
    while start.elapsed() < measurement_time {
        f(&mut bencher);
    }
    if bencher.iterations == 0 {
        println!("{id:<48} (no iterations)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations);
    println!(
        "{id:<48} time: {:>12} /iter   ({} iters)",
        format_ns(per_iter),
        bencher.iterations
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("id", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(3u32).pow(2)));
    }
}
