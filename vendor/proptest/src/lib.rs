//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, `proptest::collection::vec`, and the `prop_assert*` macros.
//! Sampling is deterministic: each case's RNG is derived from the test name
//! and the case index, so failures reproduce across runs.  There is no
//! shrinking — a failing case panics with the values left to inspect in the
//! assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG for one case of one property.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests.  Mirrors `proptest::proptest!` for the supported
/// shape: an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3u32..9,
            v in collection::vec((0u8..4, 10usize..12), 0..5),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 5);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((10..12).contains(&b));
            }
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut rng = crate::__case_rng("t", 3);
            (0..4).map(|_| rng.gen_range(0u64..100)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::__case_rng("t", 3);
            (0..4).map(|_| rng.gen_range(0u64..100)).collect()
        };
        assert_eq!(a, b);
    }
}
