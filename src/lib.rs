//! Umbrella crate re-exporting the McVerSi framework.
#![forbid(unsafe_code)]
pub use mcversi_analysis as analysis;
pub use mcversi_conformance as conformance;
pub use mcversi_core as core;
pub use mcversi_fabric as fabric;
pub use mcversi_mcm as mcm;
pub use mcversi_sim as sim;
pub use mcversi_telemetry as telemetry;
pub use mcversi_testgen as testgen;
