//! Bug hunt: inject a pipeline bug and let the GP-based generator find it.
//!
//! ```text
//! cargo run --example bug_hunt --release
//! ```
//!
//! This is the paper's headline use case in miniature (one cell of Table 4):
//! the `LQ+no-TSO` bug (the load queue does not squash speculative loads on a
//! forwarded invalidation) is injected, and the McVerSi-ALL generator — GP
//! with the selective crossover and coverage fitness — evolves tests until an
//! observed execution violates x86-TSO.

use mcversi::core::{run_campaign, CampaignConfig, GeneratorKind, McVerSiConfig};
use mcversi::sim::Bug;
use std::time::Duration;

fn main() {
    let mcversi = McVerSiConfig::small().with_iterations(4).with_test_size(64);
    let campaign = CampaignConfig::new(
        GeneratorKind::McVerSiAll,
        Some(Bug::LqNoTso),
        mcversi,
        200,
        Duration::from_secs(120),
    );

    println!(
        "hunting for {} with {} ...\n",
        Bug::LqNoTso,
        GeneratorKind::McVerSiAll
    );
    let result = run_campaign(&campaign, 7);

    if result.found {
        println!(
            "bug found after {} test-runs ({} simulated cycles, {:.2?} wall clock)",
            result.found_at_run.unwrap_or(result.test_runs),
            result.simulated_cycles,
            result.wall_time
        );
        println!("detail: {}", result.detail.unwrap_or_default());
    } else {
        println!(
            "bug not found within {} test-runs — increase the budget or test size",
            result.test_runs
        );
    }
    println!(
        "maximum total transition coverage reached: {:.1}%",
        result.max_total_coverage * 100.0
    );
    println!("final mean population NDT: {:.2}", result.final_mean_ndt);
}
