//! Quickstart: run one generated test on the simulated system and check it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the core McVerSi loop once: generate a pseudo-random test,
//! lower it to an executable program, run a test-run (several iterations) on
//! the functionally accurate MESI system, check every iteration against
//! x86-TSO, and report the fitness and non-determinism metrics that the
//! genetic programming engine would use as feedback.

use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::sim::BugConfig;
use mcversi::testgen::{RandomTestGenerator, TestGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A scaled-down system (4 cores, small caches); `McVerSiConfig::paper_default`
    // gives the paper's 8-core Table 2 system instead.
    let config = McVerSiConfig::small().with_iterations(4).with_test_size(64);
    let params = TestGenParams::small()
        .with_threads(config.system.num_cores)
        .with_test_size(64);

    let mut runner = TestRunner::new(config, BugConfig::none());
    let generator = RandomTestGenerator::new(params);
    let mut rng = StdRng::seed_from_u64(2024);

    println!("running 5 pseudo-random test-runs on the correct MESI design...\n");
    for i in 1..=5 {
        let test = generator.generate(&mut rng);
        let result = runner.run_test(&test);
        println!(
            "test-run {i}: verdict {:?}, fitness {:.3}, NDT {:.2}, {} fit addresses, {} cycles",
            result.verdict,
            result.fitness,
            result.analysis.ndt,
            result.analysis.fitaddrs.len(),
            result.cycles
        );
        assert!(!result.verdict.is_bug(), "the correct design must pass");
    }

    println!(
        "\ncumulative protocol transition coverage: {:.1}% ({} distinct transitions)",
        runner.total_coverage() * 100.0,
        runner.host().system().coverage().distinct_covered()
    );
    println!("total simulated cycles: {}", runner.total_cycles());
}
