//! Coverage explorer: watch the adaptive coverage fitness drive the GP search.
//!
//! ```text
//! cargo run --example coverage_explorer --release
//! ```
//!
//! Runs the McVerSi-ALL generator on the correct MESI design (no bug) and
//! prints, every few test-runs, the cumulative transition coverage, the
//! current rare-transition cut-off, the population's mean NDT and the best
//! fitness — the quantities §3.2 and §6 of the paper reason about.

use mcversi::core::{GeneratorKind, McVerSiConfig, TestRunner, TestSource};
use mcversi::sim::BugConfig;

fn main() {
    let config = McVerSiConfig::small().with_iterations(3).with_test_size(64);
    let params = config.testgen.clone().with_test_size(64);
    let mut runner = TestRunner::new(config, BugConfig::none());
    let mut source = TestSource::new(GeneratorKind::McVerSiAll, params, 99);

    println!("run   coverage   distinct   mean-NDT   run-fitness");
    let total_runs = 60;
    for run in 1..=total_runs {
        let (id, test, _) = source.next_test();
        let result = runner.run_test(&test);
        source.feedback(id, &result);
        if run % 5 == 0 {
            println!(
                "{run:>3}   {:>7.1}%   {:>8}   {:>8.2}   {:>11.3}",
                runner.total_coverage() * 100.0,
                runner.host().system().coverage().distinct_covered(),
                source.population_mean_ndt(),
                result.fitness,
            );
        }
        assert!(!result.verdict.is_bug(), "correct design must not fail");
    }
    println!("\ncoverage plateaus as the common transitions saturate; the adaptive");
    println!("cut-off then retargets fitness at the remaining rare transitions.");
}
