//! Litmus regression: run the x86-TSO litmus suite against both protocols.
//!
//! ```text
//! cargo run --example litmus_regression
//! ```
//!
//! The diy-style suite (38+ shapes) is executed on the correct MESI design and
//! the correct TSO-CC design; every observed execution must satisfy x86-TSO.
//! This is the "does my protocol still implement the promised model?"
//! regression a protocol designer would run after every change.

use mcversi::core::{McVerSiConfig, TestRunner};
use mcversi::sim::{BugConfig, ProtocolKind};
use mcversi::testgen::litmus;

fn main() {
    let suite = litmus::default_suite();
    println!(
        "running {} litmus shapes on both protocols...\n",
        suite.len()
    );

    for protocol in [ProtocolKind::Mesi, ProtocolKind::TsoCc] {
        let mut config = McVerSiConfig::small().with_iterations(2);
        config.system.protocol = protocol;
        let mut runner = TestRunner::new(config, BugConfig::none());
        let mut passed = 0usize;
        for litmus_test in &suite {
            // Repeat the body a few times so consecutive instances overlap in
            // the pipeline, as the diy runner's size parameter does.
            let test = litmus::repeat_test(&litmus_test.test, 6);
            let result = runner.run_test(&test);
            assert!(
                !result.verdict.is_bug(),
                "{} violated TSO on the correct {} design: {:?}",
                litmus_test.name,
                protocol.name(),
                result.verdict
            );
            passed += 1;
        }
        println!(
            "{:<7}: {passed}/{} shapes passed, coverage {:.1}%",
            protocol.name(),
            suite.len(),
            runner.total_coverage() * 100.0
        );
    }
    println!("\nall litmus shapes satisfied x86-TSO on both correct designs");
}
